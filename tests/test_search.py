"""Tests for the schedule-synthesis subsystem (repro.search.*).

The issue's contract, spelled out as assertions:

* seeded determinism — the same seed yields the identical schedule;
* every synthesized schedule passes :mod:`repro.gossip.validation` and is
  simulated bit-exactly identically by every registered engine;
* the certified gap is non-negative against the lower bounds on C(8)/P(8);
* on cycles and paths the optimizer recovers the known-optimal round
  counts, and it beats the plain edge-colouring baseline on other families.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ProtocolError, SimulationError
from repro.gossip.builders import random_systolic_schedule
from repro.gossip.engines import available_engines
from repro.gossip.model import Mode, SystolicSchedule
from repro.gossip.simulation import gossip_time, simulate_systolic
from repro.gossip.validation import validate_protocol
from repro.protocols.cycle import cycle_systolic_schedule
from repro.protocols.path import path_systolic_schedule
from repro.search import (
    Neighborhood,
    certified_gap,
    edge_coloring_seed,
    evaluate_candidates,
    evaluate_schedule,
    greedy_frontier_schedule,
    hill_climb,
    simulated_annealing,
    synthesize_schedule,
)
from repro.search.objective import INCOMPLETE_PENALTY, program_for_rounds
from repro.topologies.classic import cycle_graph, grid_2d, path_graph
from repro.topologies.debruijn import de_bruijn

#: Search budget used throughout: small enough for CI, large enough for the
#: quality assertions below to hold deterministically at these sizes.
ITERS = 150


class TestConstructors:
    @pytest.mark.parametrize("mode", [Mode.HALF_DUPLEX, Mode.FULL_DUPLEX], ids=lambda m: m.value)
    @pytest.mark.parametrize(
        "build", [lambda: cycle_graph(8), lambda: path_graph(7), lambda: grid_2d(3, 3), lambda: de_bruijn(2, 3)],
        ids=["C8", "P7", "grid3x3", "DB23"],
    )
    def test_greedy_frontier_schedule_is_valid_and_completes(self, build, mode):
        graph = build()
        schedule = greedy_frontier_schedule(graph, mode)
        validate_protocol(schedule.unroll(2 * schedule.period))
        assert gossip_time(schedule) > 0  # raises if it cannot complete

    def test_greedy_covers_every_arc_within_the_period(self):
        graph = grid_2d(3, 3)
        schedule = greedy_frontier_schedule(graph, Mode.HALF_DUPLEX)
        activated = {arc for rnd in schedule.base_rounds for arc in rnd}
        assert activated == set(graph.arcs)

    def test_greedy_rejects_directed_graph_in_duplex_modes(self):
        from repro.topologies.debruijn import de_bruijn_digraph

        with pytest.raises(ProtocolError):
            greedy_frontier_schedule(de_bruijn_digraph(2, 3), Mode.HALF_DUPLEX)

    def test_explicit_period_is_honoured_up_to_coverage_fixup(self):
        schedule = greedy_frontier_schedule(cycle_graph(8), Mode.HALF_DUPLEX, period=6)
        assert schedule.period >= 6


class TestNeighborhood:
    @pytest.mark.parametrize("mode", [Mode.HALF_DUPLEX, Mode.FULL_DUPLEX], ids=lambda m: m.value)
    def test_long_random_walks_stay_valid(self, mode):
        graph = grid_2d(3, 3)
        moves = Neighborhood(graph, mode)
        rng = random.Random(11)
        rounds = tuple(edge_coloring_seed(graph, mode).base_rounds)
        for _ in range(120):
            rounds = moves.propose(rounds, rng)
            schedule = SystolicSchedule(graph, rounds, mode=mode)
            validate_protocol(schedule.unroll(schedule.period))

    def test_period_bounds_are_respected(self):
        graph = cycle_graph(6)
        moves = Neighborhood(graph, Mode.HALF_DUPLEX, min_period=3, max_period=5)
        rng = random.Random(0)
        rounds = tuple(edge_coloring_seed(graph, Mode.HALF_DUPLEX).base_rounds)
        for _ in range(150):
            rounds = moves.propose(rounds, rng)
            assert 3 <= len(rounds) <= 5

    def test_unknown_move_kind_rejected(self):
        moves = Neighborhood(cycle_graph(6), Mode.HALF_DUPLEX)
        with pytest.raises(ProtocolError):
            moves.propose((), random.Random(0), kinds=["warp"])

    def test_empty_period_never_crashes(self):
        # The documented dead-end contract: inapplicable moves return the
        # input unchanged (an empty period can only grow via insert_round).
        moves = Neighborhood(cycle_graph(6), Mode.HALF_DUPLEX)
        rng = random.Random(5)
        for _ in range(50):
            result = moves.propose((), rng)
            assert result == () or len(result) == 1


class TestObjective:
    def test_gossip_rounds_matches_simulator(self):
        schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
        value = evaluate_schedule(schedule)
        assert value.complete
        assert value.rounds == gossip_time(schedule)
        assert value.score == float(value.rounds)

    def test_incomplete_schedules_score_above_penalty(self):
        graph = path_graph(6)
        # One forward matching only: information never flows back.
        schedule = SystolicSchedule(graph, [[(0, 1), (2, 3), (4, 5)]], mode=Mode.HALF_DUPLEX)
        value = evaluate_schedule(schedule)
        assert not value.complete
        assert value.rounds is None
        assert value.score >= INCOMPLETE_PENALTY

    def test_eccentricity_objectives_agree_with_gossip_on_complete_schedules(self):
        schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
        rounds = evaluate_schedule(schedule, objective="gossip_rounds")
        max_ecc = evaluate_schedule(schedule, objective="max_eccentricity")
        mean_ecc = evaluate_schedule(schedule, objective="mean_eccentricity")
        assert max_ecc.score == rounds.score  # max broadcast time == gossip time
        assert mean_ecc.score <= max_ecc.score

    def test_unknown_objective_rejected(self):
        with pytest.raises(SimulationError):
            evaluate_schedule(cycle_systolic_schedule(6), objective="vibes")

    def test_batched_evaluation_matches_per_schedule_calls(self):
        graph = cycle_graph(8)
        candidates = [
            random_systolic_schedule(graph, 4, Mode.HALF_DUPLEX, seed=s) for s in range(5)
        ]
        batch = evaluate_candidates(candidates, engine="reference")
        singles = [evaluate_schedule(s, engine="reference") for s in candidates]
        assert [v.score for v in batch] == [v.score for v in singles]
        assert all(v.engine_name == "reference" for v in batch)


class TestSearchDeterminism:
    def test_same_seed_same_schedule(self):
        graph = de_bruijn(2, 3)
        a = synthesize_schedule(graph, Mode.HALF_DUPLEX, seed=3, max_iters=60)
        b = synthesize_schedule(graph, Mode.HALF_DUPLEX, seed=3, max_iters=60)
        assert a.schedule.base_rounds == b.schedule.base_rounds
        assert a.objective.score == b.objective.score
        assert a.evaluations == b.evaluations

    def test_engine_choice_does_not_change_the_walk(self):
        # Engines are bit-exact, so the accept/reject sequence — and hence
        # the synthesized schedule — must be identical across backends.
        graph = cycle_graph(8)
        per_engine = {
            engine: synthesize_schedule(
                graph, Mode.HALF_DUPLEX, seed=1, max_iters=40, engine=engine
            ).schedule.base_rounds
            for engine in available_engines()
        }
        reference = per_engine.pop("reference")
        for engine, rounds in per_engine.items():
            assert rounds == reference, engine

    def test_hill_strategy_honours_restarts(self):
        graph = grid_2d(3, 3)
        single = synthesize_schedule(
            graph, Mode.HALF_DUPLEX, strategy="hill", seed=4, max_iters=30, restarts=0
        )
        restarted = synthesize_schedule(
            graph, Mode.HALF_DUPLEX, strategy="hill", seed=4, max_iters=30, restarts=2
        )
        assert restarted.evaluations > single.evaluations  # extra walks ran
        assert restarted.restarts == 2 and single.restarts == 0
        assert "-opt-" not in restarted.seed_name  # traces to a real seed
        assert restarted.objective.complete
        validate_protocol(restarted.schedule.unroll(restarted.schedule.period))

    def test_hill_and_anneal_both_return_valid_results(self):
        graph = grid_2d(3, 3)
        seed_schedule = edge_coloring_seed(graph, Mode.HALF_DUPLEX)
        for driver in (hill_climb, simulated_annealing):
            result = driver(seed_schedule, seed=2, max_iters=40)
            assert result.objective.complete
            assert result.evaluations > 0
            assert result.history[-1] <= result.history[0]
            validate_protocol(result.schedule.unroll(result.schedule.period))


@pytest.mark.parametrize("mode", [Mode.HALF_DUPLEX, Mode.FULL_DUPLEX], ids=lambda m: m.value)
@pytest.mark.parametrize(
    "build", [lambda: cycle_graph(8), lambda: path_graph(8), lambda: grid_2d(3, 3)],
    ids=["C8", "P8", "grid3x3"],
)
class TestSynthesizedSchedules:
    def test_valid_and_bit_exact_across_engines(self, build, mode):
        graph = build()
        result = synthesize_schedule(graph, mode, seed=0, max_iters=60)
        schedule = result.schedule
        validate_protocol(schedule.unroll(2 * schedule.period))
        runs = {
            engine: simulate_systolic(schedule, track_history=True, engine=engine)
            for engine in available_engines()
        }
        reference = runs.pop("reference")
        for engine, run in runs.items():
            assert run.completion_round == reference.completion_round, engine
            assert run.knowledge == reference.knowledge, engine
            assert run.coverage_history == reference.coverage_history, engine


class TestCertifiedGaps:
    @pytest.mark.parametrize(
        "schedule_builder",
        [
            lambda: cycle_systolic_schedule(8, Mode.HALF_DUPLEX),
            lambda: path_systolic_schedule(8, Mode.HALF_DUPLEX),
        ],
        ids=["C8", "P8"],
    )
    def test_gap_non_negative_on_known_constructions(self, schedule_builder):
        report = certified_gap(schedule_builder())
        assert report.found is not None
        assert report.gap is not None and report.gap >= 0
        assert report.lower_bound >= report.diameter_bound
        assert report.certified_rounds is not None  # period >= 3 here

    def test_gap_non_negative_on_search_winners_c8_p8(self):
        for graph in (cycle_graph(8), path_graph(8)):
            result = synthesize_schedule(graph, Mode.HALF_DUPLEX, seed=0, max_iters=ITERS)
            report = certified_gap(result.schedule, found=result.found_rounds)
            assert report.gap is not None and report.gap >= 0, graph.name

    def test_short_periods_fall_back_to_the_diameter_bound(self):
        # Full-duplex paths have period 2: no Theorem 4.1 certificate, but
        # the diameter still bounds the gossip time — exactly (gap 0).
        result = synthesize_schedule(path_graph(8), Mode.FULL_DUPLEX, seed=0, max_iters=60)
        report = certified_gap(result.schedule, found=result.found_rounds)
        assert report.certified_rounds is None or report.period >= 3
        assert report.lower_bound >= report.diameter_bound == 7

    def test_separator_constants_surface_in_the_report(self):
        from repro.topologies.separators import family_parameters

        result = synthesize_schedule(de_bruijn(2, 3), Mode.HALF_DUPLEX, seed=0, max_iters=40)
        report = certified_gap(
            result.schedule,
            found=result.found_rounds,
            separator=family_parameters("DB", 2),
        )
        assert report.separator_coefficient is not None
        assert report.separator_coefficient > 0


class TestSearchQuality:
    def test_recovers_known_optimal_rounds_on_cycles(self):
        for n in (8, 12):
            known = gossip_time(cycle_systolic_schedule(n, Mode.HALF_DUPLEX))
            result = synthesize_schedule(cycle_graph(n), Mode.HALF_DUPLEX, seed=0, max_iters=ITERS)
            assert result.found_rounds == known, n

    def test_recovers_or_beats_known_construction_on_paths(self):
        known = gossip_time(path_systolic_schedule(8, Mode.HALF_DUPLEX))
        result = synthesize_schedule(path_graph(8), Mode.HALF_DUPLEX, seed=0, max_iters=ITERS)
        assert result.found_rounds is not None
        assert result.found_rounds <= known

    def test_provably_optimal_on_full_duplex_cycle_and_path(self):
        # Here the certified lower bound meets the found schedule: gap 0.
        for graph in (cycle_graph(8), path_graph(8)):
            result = synthesize_schedule(graph, Mode.FULL_DUPLEX, seed=0, max_iters=ITERS)
            report = certified_gap(result.schedule, found=result.found_rounds)
            assert report.gap == 0, graph.name

    def test_beats_edge_coloring_baseline_on_grid_and_de_bruijn(self):
        for graph, mode in (
            (grid_2d(3, 4), Mode.HALF_DUPLEX),
            (de_bruijn(2, 3), Mode.HALF_DUPLEX),
            (de_bruijn(2, 3), Mode.FULL_DUPLEX),
        ):
            baseline = evaluate_schedule(edge_coloring_seed(graph, mode))
            result = synthesize_schedule(graph, mode, seed=0, max_iters=ITERS)
            assert result.found_rounds is not None
            assert result.found_rounds < baseline.rounds, (graph.name, mode.value)


class TestRandomScheduleFuzzerReuse:
    """The satellite contract on random_systolic_schedule."""

    def test_rng_instance_matches_equivalent_seed(self):
        graph = cycle_graph(8)
        via_seed = random_systolic_schedule(graph, 4, Mode.HALF_DUPLEX, seed=7)
        via_rng = random_systolic_schedule(graph, 4, Mode.HALF_DUPLEX, rng=random.Random(7))
        assert via_seed.base_rounds == via_rng.base_rounds

    def test_shared_rng_advances_between_calls(self):
        graph = de_bruijn(2, 4)
        rng = random.Random(3)
        first = random_systolic_schedule(graph, 5, Mode.HALF_DUPLEX, rng=rng)
        second = random_systolic_schedule(graph, 5, Mode.HALF_DUPLEX, rng=rng)
        assert first.base_rounds != second.base_rounds

    def test_name_includes_mode_and_source(self):
        graph = cycle_graph(8)
        seeded = random_systolic_schedule(graph, 4, Mode.FULL_DUPLEX, seed=5)
        assert "full-duplex" in seeded.name
        assert "seed5" in seeded.name
        drawn = random_systolic_schedule(graph, 4, Mode.HALF_DUPLEX, rng=random.Random(1))
        assert "half-duplex" in drawn.name
        assert drawn.name.endswith("rng")


class TestExperimentTable:
    def test_search_gaps_table_small_battery(self):
        from repro.experiments.search_gaps import search_gaps_table

        rows = search_gaps_table(
            seed=0,
            max_iters=25,
            instances=[(cycle_graph(6), None), (path_graph(6), None)],
        )
        assert len(rows) == 4  # two instances x two modes
        for row in rows:
            assert row.consistent
            assert row.found <= row.baseline_rounds
            assert row.engine in available_engines()

    def test_cli_optimize_reports_the_triple(self, capsys):
        from repro.cli import main

        assert main(["optimize", "--family", "cycle", "--size", "8", "--iterations", "40"]) == 0
        out = capsys.readouterr().out
        assert "(found, lower_bound, gap) = (" in out
        assert "winner: C(8)-opt-half-duplex" in out

    def test_cli_optimize_rejects_bad_size(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["optimize", "--family", "grid", "--size", "12"])


def test_program_for_rounds_budget_matches_schedule_default():
    graph = cycle_graph(8)
    schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
    program = program_for_rounds(graph, schedule.base_rounds)
    assert program.cyclic
    assert program.max_rounds == max(4 * schedule.period * graph.n, 16)
