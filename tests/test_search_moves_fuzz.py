"""Property fuzzer for the schedule-search move model.

``search.moves.Neighborhood`` promises *validity by construction*: whatever
sequence of moves a driver applies, every candidate stays a legal systolic
period — rounds are matchings (with the full-duplex opposite-pair
relaxation), full-duplex rounds are closed under arc reversal, only arcs of
the underlying digraph ever appear, and the period stays inside the
configured bounds.  The local-search drivers *skip per-candidate
revalidation* on the strength of that promise, so this suite attacks it
directly: seeded Hypothesis strategies draw random digraphs (symmetric for
the duplex modes, arbitrary orientations for the directed mode), random
period bounds, random starting candidates and long random move chains —
including restricted move-kind subsets — and check every intermediate
candidate against :mod:`repro.gossip.validation`.  The suite is
``derandomize``d so CI failures replay deterministically.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.gossip.model import Mode
from repro.gossip.validation import validate_round
from repro.search.moves import MOVE_KINDS, Neighborhood
from repro.topologies.base import Digraph

FUZZ = settings(max_examples=100, deadline=None, derandomize=True)

MODES = (Mode.DIRECTED, Mode.HALF_DUPLEX, Mode.FULL_DUPLEX)


@st.composite
def random_digraphs(draw, mode: Mode):
    """A random digraph compatible with ``mode``.

    The duplex modes get symmetric digraphs (both orientations of every
    chosen undirected edge); the directed mode additionally drops a random
    subset of orientations, producing genuinely asymmetric arc sets.
    """
    n = draw(st.integers(2, 8))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, min_size=1, max_size=12))
    arcs = []
    for u, v in chosen:
        if mode is Mode.DIRECTED:
            orientation = draw(st.sampled_from(["uv", "vu", "both"]))
        else:
            orientation = "both"
        if orientation in ("uv", "both"):
            arcs.append((u, v))
        if orientation in ("vu", "both"):
            arcs.append((v, u))
    return Digraph(range(n), arcs, name=f"fuzz-moves-{n}")


@st.composite
def move_cases(draw):
    mode = draw(st.sampled_from(MODES))
    graph = draw(random_digraphs(mode))
    min_period = draw(st.integers(1, 3))
    max_period = draw(st.one_of(st.none(), st.integers(min_period, min_period + 4)))
    neighborhood = Neighborhood(
        graph,
        mode,
        min_period=min_period,
        max_period=max_period,
        activation_probability=draw(st.sampled_from([0.4, 0.9, 1.0])),
    )
    seed = draw(st.integers(0, 10_000))
    start_period = draw(
        st.integers(min_period, max_period if max_period is not None else min_period + 4)
    )
    kinds = draw(
        st.one_of(
            st.none(),
            st.lists(st.sampled_from(MOVE_KINDS), unique=True, min_size=1),
        )
    )
    steps = draw(st.integers(1, 25))
    return neighborhood, seed, start_period, kinds, steps


def assert_valid_candidate(neighborhood: Neighborhood, rounds, context) -> None:
    graph_arcs = set(neighborhood.graph.arcs)
    assert neighborhood.min_period <= len(rounds), context
    if neighborhood.max_period is not None:
        assert len(rounds) <= neighborhood.max_period, context
    for position, round_arcs in enumerate(rounds):
        # Only arcs of the underlying digraph may ever be introduced.
        assert set(round_arcs) <= graph_arcs, (context, position)
        # Matching validity and (full-duplex) pairing, straight from the
        # Definition 3.1 checker.
        validate_round(round_arcs, neighborhood.mode)


@FUZZ
@given(case=move_cases())
def test_every_move_preserves_validity(case):
    """Random move chains: every intermediate candidate stays legal."""
    neighborhood, seed, start_period, kinds, steps = case
    rng = random.Random(seed)
    rounds = tuple(neighborhood.random_round(rng) for _ in range(start_period))
    assert_valid_candidate(neighborhood, rounds, "start")
    for step in range(steps):
        rounds = neighborhood.propose(rounds, rng, kinds=kinds)
        assert_valid_candidate(neighborhood, rounds, ("step", step, kinds))


@FUZZ
@given(case=move_cases())
def test_propose_is_seed_deterministic(case):
    """Identical rng seeds must replay the exact same move chain."""
    neighborhood, seed, start_period, kinds, steps = case

    def walk():
        rng = random.Random(seed)
        rounds = tuple(neighborhood.random_round(rng) for _ in range(start_period))
        trail = [rounds]
        for _ in range(steps):
            rounds = neighborhood.propose(rounds, rng, kinds=kinds)
            trail.append(rounds)
        return trail

    assert walk() == walk()


@FUZZ
@given(case=move_cases(), data=st.data())
def test_single_move_kinds_preserve_validity(case, data):
    """Each move kind in isolation keeps candidates legal (or is a no-op)."""
    neighborhood, seed, start_period, _, _ = case
    kind = data.draw(st.sampled_from(MOVE_KINDS))
    rng = random.Random(seed)
    rounds = tuple(neighborhood.random_round(rng) for _ in range(start_period))
    moved = neighborhood.propose(rounds, rng, kinds=[kind])
    assert_valid_candidate(neighborhood, moved, ("single-kind", kind))


def test_unknown_move_kind_rejected():
    graph = Digraph(range(3), [(0, 1), (1, 0), (1, 2), (2, 1)], name="P3")
    neighborhood = Neighborhood(graph, Mode.HALF_DUPLEX)
    rng = random.Random(0)
    rounds = (neighborhood.random_round(rng),)
    with pytest.raises(ProtocolError):
        neighborhood.propose(rounds, rng, kinds=["swap_rounds", "not-a-move"])
