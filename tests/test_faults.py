"""Tests for the fault-injection subsystem (repro.faults).

Covers the fault models' determinism contract, the statistical sanity
anchors the ISSUE pins (Bernoulli p=0 ≡ fault-free, p=1 ⇒ no completion on
any connected schedule), the Monte-Carlo driver's horizon/dispatch
behaviour, the robustness metrics, the adversarial worst-case analysis,
and the fault-aware search objective.  Cross-engine bit-exactness of
seeded trials lives in ``tests/test_faults_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.faults import (
    AdversarialArcFaults,
    BernoulliArcFaults,
    CrashFaults,
    FaultModel,
    completion_curve,
    completion_probability,
    default_horizon,
    expected_gossip_time,
    gossip_time_quantile,
    monte_carlo,
    reachability_degradation,
    worst_case_gossip_time,
)
from repro.gossip.engines.base import RoundProgram
from repro.gossip.model import GossipProtocol, Mode
from repro.gossip.simulation import gossip_time
from repro.protocols.cycle import cycle_systolic_schedule
from repro.protocols.generic import coloring_systolic_schedule
from repro.protocols.path import path_systolic_schedule
from repro.search import RobustnessSpec, edge_coloring_seed, synthesize_schedule
from repro.search.objective import evaluate_schedule
from repro.topologies.classic import cycle_graph, grid_2d, path_graph

MODELS = (
    BernoulliArcFaults(0.3),
    CrashFaults(2),
    AdversarialArcFaults(1),
)


def _schedule(n: int = 9):
    return cycle_systolic_schedule(n, Mode.HALF_DUPLEX)


def _masks(sample):
    return [sample.round_mask(r).copy() for r in range(1, sample.horizon + 1)]


class TestModelDeterminism:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_same_seed_same_masks(self, model):
        program = RoundProgram.from_schedule(_schedule())
        a = model.sample(program, horizon=20, trials=5, seed=42)
        b = model.sample(program, horizon=20, trials=5, seed=42)
        for ma, mb in zip(_masks(a), _masks(b)):
            assert np.array_equal(ma, mb)

    @pytest.mark.parametrize(
        "model", (BernoulliArcFaults(0.3), CrashFaults(2)), ids=lambda m: m.name
    )
    def test_different_seeds_differ(self, model):
        program = RoundProgram.from_schedule(_schedule())
        a = model.sample(program, horizon=30, trials=5, seed=0)
        b = model.sample(program, horizon=30, trials=5, seed=1)
        assert any(
            not np.array_equal(ma, mb) for ma, mb in zip(_masks(a), _masks(b))
        )

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_trial_mask_matches_round_mask(self, model):
        program = RoundProgram.from_schedule(_schedule())
        sample = model.sample(program, horizon=12, trials=4, seed=7)
        for r in range(1, 13):
            full = sample.round_mask(r)
            for t in range(4):
                assert np.array_equal(full[t], sample.trial_mask(t, r))

    def test_trial_streams_are_prefix_stable(self):
        """Trial t of a large sample equals trial t of a small one."""
        program = RoundProgram.from_schedule(_schedule())
        small = BernoulliArcFaults(0.4).sample(program, horizon=15, trials=3, seed=9)
        large = BernoulliArcFaults(0.4).sample(program, horizon=15, trials=8, seed=9)
        for r in range(1, 16):
            assert np.array_equal(small.round_mask(r), large.round_mask(r)[:3])

    def test_kept_arcs_follow_masks(self):
        program = RoundProgram.from_schedule(_schedule())
        sample = BernoulliArcFaults(0.5).sample(program, horizon=8, trials=2, seed=3)
        for r in range(1, 9):
            arcs = program.arcs_at(r)
            mask = sample.trial_mask(1, r)
            assert sample.kept_arcs(1, r) == tuple(
                arc for arc, keep in zip(arcs, mask.tolist()) if keep
            )

    def test_models_satisfy_protocol(self):
        for model in MODELS:
            assert isinstance(model, FaultModel)

    def test_out_of_horizon_round_rejected(self):
        program = RoundProgram.from_schedule(_schedule())
        sample = BernoulliArcFaults(0.1).sample(program, horizon=5, trials=2, seed=0)
        with pytest.raises(SimulationError):
            sample.round_mask(6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            BernoulliArcFaults(1.5)
        with pytest.raises(SimulationError):
            CrashFaults(-1)
        with pytest.raises(SimulationError):
            AdversarialArcFaults(-2)
        program = RoundProgram.from_schedule(_schedule())
        with pytest.raises(SimulationError):
            CrashFaults(100).sample(program, horizon=10, trials=2, seed=0)
        with pytest.raises(SimulationError):
            BernoulliArcFaults(0.1).sample(program, horizon=10, trials=0, seed=0)


class TestStatisticalSanity:
    @pytest.mark.parametrize("method", ("batched", "looped"))
    def test_p_zero_equals_fault_free(self, method):
        schedule = _schedule()
        nominal = gossip_time(schedule)
        result = monte_carlo(
            schedule, BernoulliArcFaults(0.0), trials=4, seed=5, method=method
        )
        assert result.completion_rounds == (nominal,) * 4
        assert result.completion_rate == 1.0
        full = (1 << schedule.graph.n) - 1
        assert all(k == (full,) * schedule.graph.n for k in result.knowledge)

    @pytest.mark.parametrize(
        "schedule",
        (
            _schedule(),
            path_systolic_schedule(6, Mode.HALF_DUPLEX),
            coloring_systolic_schedule(grid_2d(3, 3), Mode.FULL_DUPLEX),
        ),
        ids=("cycle", "path", "grid"),
    )
    def test_p_one_never_completes(self, schedule):
        result = monte_carlo(schedule, BernoulliArcFaults(1.0), trials=3, seed=5)
        assert result.completion_rounds == (None,) * 3
        assert result.completion_rate == 0.0
        # Nothing was ever transmitted: everyone still knows only itself.
        n = schedule.graph.n
        assert all(k == tuple(1 << j for j in range(n)) for k in result.knowledge)

    def test_faults_only_delay_gossip(self):
        """Arc monotonicity: a perturbed run never beats the fault-free one."""
        schedule = _schedule(10)
        nominal = gossip_time(schedule)
        result = monte_carlo(schedule, BernoulliArcFaults(0.35), trials=12, seed=2)
        assert all(r is None or r >= nominal for r in result.completion_rounds)

    def test_crash_zero_equals_fault_free(self):
        schedule = _schedule()
        nominal = gossip_time(schedule)
        result = monte_carlo(schedule, CrashFaults(0), trials=3, seed=8)
        assert result.completion_rounds == (nominal,) * 3

    def test_crash_silences_from_the_crash_round_on(self):
        """Fail-stop semantics: an arc fires iff neither endpoint has a
        crash round ≤ the current round — in particular the vertex is
        already silent *during* its own crash round."""
        program = RoundProgram.from_schedule(_schedule())
        index = program.graph.index
        sample = CrashFaults(2).sample(program, horizon=20, trials=6, seed=4)
        crash_round = sample.crash_round
        for r in range(1, 21):
            arcs = program.arcs_at(r)
            mask = sample.round_mask(r)
            for t in range(6):
                for position, (tail, head) in enumerate(arcs):
                    expected = (
                        crash_round[t, index(tail)] > r
                        and crash_round[t, index(head)] > r
                    )
                    assert bool(mask[t, position]) == expected, (t, r, tail, head)

    def test_crash_starves_the_crashed_vertex(self):
        """A pre-completion crash leaves some vertex short of items."""
        schedule = path_systolic_schedule(8, Mode.HALF_DUPLEX)
        result = monte_carlo(schedule, CrashFaults(2), trials=20, seed=1)
        degradation = reachability_degradation(result)
        assert degradation.shape == (8,)
        assert np.all(degradation <= 1.0)
        incomplete = [r is None for r in result.completion_rounds]
        assert any(incomplete), "some crash should pre-empt completion"
        assert degradation.min() < 1.0


class TestMonteCarloDriver:
    def test_default_horizon_covers_whole_periods(self):
        assert default_horizon(10, 4) == 32
        assert default_horizon(1, 5) == 20  # floor of 16, rounded to periods
        assert default_horizon(10, 4, 2) == 20

    def test_horizon_defaults_from_nominal(self):
        schedule = _schedule()
        nominal = gossip_time(schedule)
        result = monte_carlo(schedule, BernoulliArcFaults(0.1), trials=2, seed=0)
        assert result.nominal_rounds == nominal
        assert result.horizon == default_horizon(nominal, schedule.period)

    def test_incomplete_nominal_requires_explicit_budget(self):
        # A schedule that only ever activates one direction cannot complete.
        graph = path_graph(3)
        protocol = GossipProtocol(graph, [[(0, 1)]] * 4)
        with pytest.raises(SimulationError):
            monte_carlo(protocol, BernoulliArcFaults(0.1), trials=2)
        result = monte_carlo(
            protocol, BernoulliArcFaults(0.0), trials=2, max_rounds=4
        )
        assert result.completion_rounds == (None, None)

    def test_finite_protocol_horizon_capped_at_length(self):
        schedule = _schedule()
        protocol = schedule.unroll(10)
        result = monte_carlo(
            protocol, BernoulliArcFaults(0.2), trials=3, seed=4, max_rounds=99
        )
        assert result.horizon == 10

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError):
            monte_carlo(_schedule(), BernoulliArcFaults(0.1), trials=2, method="warp")

    def test_named_engine_routes_to_looped(self):
        result = monte_carlo(
            _schedule(), BernoulliArcFaults(0.2), trials=2, seed=0, engine="reference"
        )
        assert result.engine_name == "reference"

    def test_auto_method_is_batched(self):
        result = monte_carlo(_schedule(), BernoulliArcFaults(0.2), trials=2, seed=0)
        assert result.engine_name == "montecarlo-batched"

    def test_single_vertex_completes_immediately(self):
        protocol = GossipProtocol(path_graph(1), [])
        result = monte_carlo(protocol, BernoulliArcFaults(0.9), trials=3, seed=0)
        assert result.completion_rounds == (0, 0, 0)
        assert result.knowledge == ((1,),) * 3


class TestMetrics:
    @pytest.fixture()
    def result(self):
        return monte_carlo(
            _schedule(10), BernoulliArcFaults(0.3), trials=25, seed=6
        )

    def test_completion_probability_monotone(self, result):
        curve = completion_curve(result)
        probabilities = [p for _, p in curve]
        assert probabilities == sorted(probabilities)
        assert curve[-1][1] == completion_probability(result)
        assert completion_probability(result, 0) == 0.0

    def test_completion_curve_always_ends_at_the_horizon(self, result):
        """Default budgets include the horizon itself even when the horizon
        is not a multiple of the checkpoint step, so the final curve point
        equals the overall completion rate."""
        from dataclasses import replace

        # A horizon that 8 does not divide: completions in the final
        # partial step must still be visible on the curve.
        clipped = replace(
            result,
            horizon=42,
            completion_rounds=(41, 42) + result.completion_rounds[2:],
        )
        curve = completion_curve(clipped)
        assert curve[-1][0] == 42
        assert curve[-1][1] == completion_probability(clipped)
        assert curve[-1][1] >= 2 / clipped.trials

    def test_expected_time_and_quantiles(self, result):
        mean = expected_gossip_time(result)
        assert mean is not None and mean >= result.nominal_rounds
        p50 = gossip_time_quantile(result, 0.5)
        p90 = gossip_time_quantile(result, 0.9)
        assert p50 is not None and p90 is not None and p50 <= p90
        assert gossip_time_quantile(result, 0.0) == min(
            r for r in result.completion_rounds if r is not None
        )
        assert gossip_time_quantile(result, 1.0) == max(
            r for r in result.completion_rounds if r is not None
        )
        with pytest.raises(SimulationError):
            gossip_time_quantile(result, 1.5)

    def test_metrics_on_all_failed_trials(self):
        result = monte_carlo(_schedule(), BernoulliArcFaults(1.0), trials=3, seed=0)
        assert expected_gossip_time(result) is None
        assert gossip_time_quantile(result, 0.5) is None
        assert completion_probability(result) == 0.0

    def test_reachability_is_one_without_faults(self):
        result = monte_carlo(_schedule(), BernoulliArcFaults(0.0), trials=2, seed=0)
        assert np.allclose(reachability_degradation(result), 1.0)


class TestAdversarial:
    def test_worst_case_at_least_nominal(self):
        schedule = _schedule(8)
        nominal = gossip_time(schedule)
        report = worst_case_gossip_time(schedule, 1)
        assert report.exact
        assert report.rounds is None or report.rounds >= nominal
        assert len(report.deletion) <= 1
        assert report.evaluations >= 2

    def test_zero_budget_is_nominal(self):
        schedule = _schedule(8)
        report = worst_case_gossip_time(schedule, 0)
        assert report.rounds == gossip_time(schedule)
        assert report.deletion == ()

    def test_disconnecting_deletion_found(self):
        # Deleting one direction of a path edge already silences every item
        # behind it for good (the slot repeats identically every period).
        schedule = path_systolic_schedule(4, Mode.HALF_DUPLEX)
        report = worst_case_gossip_time(schedule, 2)
        assert report.rounds is None
        assert 1 <= len(report.deletion) <= 2

    def test_greedy_path_when_enumeration_explodes(self):
        schedule = _schedule(8)
        report = worst_case_gossip_time(schedule, 2, exact_limit=3)
        assert not report.exact
        exact = worst_case_gossip_time(schedule, 2)
        # Greedy damage is a lower bound on the true worst case.
        if exact.rounds is None:
            assert True  # nothing to compare against a disconnect
        elif report.rounds is not None:
            assert report.rounds <= exact.rounds

    def test_monotone_in_budget(self):
        schedule = _schedule(8)
        r1 = worst_case_gossip_time(schedule, 1)
        r2 = worst_case_gossip_time(schedule, 2)
        if r1.rounds is not None and r2.rounds is not None:
            assert r2.rounds >= r1.rounds
        else:
            assert r2.rounds is None

    def test_sample_cache_respects_the_round_budget(self):
        """Two programs with identical rounds but different budgets must not
        share a cached worst deletion (a delaying deletion under a generous
        budget can be a completion-preventing one under a tight budget)."""
        schedule = _schedule(8)
        nominal = gossip_time(schedule)
        generous = RoundProgram.from_schedule(schedule)
        tight = RoundProgram(
            generous.graph, generous.rounds, cyclic=True, max_rounds=nominal
        )
        model = AdversarialArcFaults(1)
        model.sample(generous, horizon=12, trials=1, seed=0)
        reused = model.sample(tight, horizon=12, trials=1, seed=0)
        fresh = AdversarialArcFaults(1).sample(tight, horizon=12, trials=1, seed=0)
        for r in range(1, 13):
            assert np.array_equal(reused.round_mask(r), fresh.round_mask(r))

    def test_adversarial_monte_carlo_trials_identical(self):
        schedule = _schedule(8)
        result = monte_carlo(schedule, AdversarialArcFaults(1), trials=3, seed=0)
        assert len(set(result.completion_rounds)) == 1
        report = worst_case_gossip_time(schedule, 1)
        assert result.completion_rounds[0] == report.rounds


class TestRobustObjective:
    def test_requires_spec(self):
        schedule = edge_coloring_seed(cycle_graph(8), Mode.HALF_DUPLEX)
        with pytest.raises(SimulationError):
            evaluate_schedule(schedule, objective="robust_gossip_rounds")

    def test_p_zero_matches_gossip_rounds(self):
        schedule = edge_coloring_seed(cycle_graph(8), Mode.HALF_DUPLEX)
        spec = RobustnessSpec(BernoulliArcFaults(0.0), trials=4, seed=1)
        robust = evaluate_schedule(
            schedule, objective="robust_gossip_rounds", robustness=spec
        )
        plain = evaluate_schedule(schedule, objective="gossip_rounds")
        assert robust.score == plain.score
        assert robust.rounds == plain.rounds

    def test_faulty_score_exceeds_nominal(self):
        schedule = edge_coloring_seed(cycle_graph(8), Mode.HALF_DUPLEX)
        spec = RobustnessSpec(BernoulliArcFaults(0.3), trials=6, seed=1)
        value = evaluate_schedule(
            schedule, objective="robust_gossip_rounds", robustness=spec
        )
        assert value.complete
        assert value.score > value.rounds

    def test_synthesis_is_deterministic(self):
        spec = RobustnessSpec(BernoulliArcFaults(0.2), trials=5, seed=3)
        runs = [
            synthesize_schedule(
                cycle_graph(8),
                Mode.HALF_DUPLEX,
                objective="robust_gossip_rounds",
                robustness=spec,
                seed=11,
                max_iters=30,
            )
            for _ in range(2)
        ]
        assert runs[0].schedule.base_rounds == runs[1].schedule.base_rounds
        assert runs[0].objective.score == runs[1].objective.score
        assert runs[0].found_rounds is not None

    def test_finite_program_horizon_clamped(self):
        """The robust objective grants a finite program no rounds beyond
        its own length (regression: used to index past the round tuple)."""
        from repro.gossip.engines import resolve_engine
        from repro.search.objective import evaluate_program

        schedule = edge_coloring_seed(cycle_graph(8), Mode.HALF_DUPLEX)
        nominal = gossip_time(schedule)
        program = RoundProgram.from_protocol(schedule.unroll(nominal))
        spec = RobustnessSpec(BernoulliArcFaults(0.2), trials=4, seed=1)
        value = evaluate_program(
            program,
            resolve_engine("auto"),
            objective="robust_gossip_rounds",
            robustness=spec,
        )
        assert value.complete and value.rounds == nominal

    def test_invalid_spec_rejected(self):
        with pytest.raises(SimulationError):
            RobustnessSpec(BernoulliArcFaults(0.1), trials=0)
        with pytest.raises(SimulationError):
            RobustnessSpec(BernoulliArcFaults(0.1), horizon_factor=0)


class TestSurface:
    def test_robustness_table_invariants(self):
        from repro.experiments.robustness import robustness_table

        rows = robustness_table(
            trials=12, ps=(0.15,), search_iters=15, search_trials=3
        )
        assert len(rows) == 2
        for row in rows:
            assert row.consistent, row
            assert row.baseline_rounds > 0

    @pytest.mark.parametrize(
        "argv",
        (
            ["robustness", "--family", "cycle", "--size", "8", "--model",
             "bernoulli", "--p", "0.2", "--trials", "10"],
            ["robustness", "--family", "cycle", "--size", "8", "--model",
             "crash", "--k", "1", "--trials", "10"],
            ["robustness", "--family", "path", "--size", "4", "--model",
             "adversarial", "--k", "2"],
        ),
        ids=("bernoulli", "crash", "adversarial"),
    )
    def test_cli_robustness(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_cli_robustness_rejects_bad_size(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["robustness", "--family", "cycle", "--size", "2x3"])
