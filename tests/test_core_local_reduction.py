"""Tests for the local-protocol machinery (repro.core.local_protocol, .reduction).

These tests confront the closed-form matrices of Section 4 (Figs. 1–3) with
each other and with direct numerical linear algebra:

* ``Nx(λ) = M′ P`` and ``Ox(λ) = (Mxᵀ)′ Q`` — the reductions really are the
  restriction matrices the paper describes;
* Lemma 4.2 — the explicit semi-eigenvector satisfies its inequalities;
* Lemma 4.3 — ``‖Mx(λ)‖`` never exceeds ``λ·√p·√p`` and the reduced spectral
  radius equals the Gram spectral radius (Lemma 2.2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local_protocol import LocalProtocol
from repro.core.norms import euclidean_norm, spectral_radius
from repro.core.polynomials import norm_bound_product, p_polynomial
from repro.core.reduction import (
    geometric_column,
    local_delay_matrix,
    local_norm,
    reduced_left_matrix,
    reduced_right_matrix,
    restriction_matrices,
    semi_eigenvector,
    verify_lemma_42,
    verify_lemma_43,
)
from repro.exceptions import BoundComputationError, ProtocolError

SAMPLE_PROTOCOLS = [
    LocalProtocol((1,), (1,)),
    LocalProtocol((2,), (2,)),
    LocalProtocol((3,), (1,)),
    LocalProtocol((2, 1), (1, 2)),
    LocalProtocol((1, 1, 2), (2, 1, 1)),
    LocalProtocol((1, 3), (2, 2)),
]

SAMPLE_LAMBDAS = [0.3, 0.618, 0.786]


class TestLocalProtocol:
    def test_basic_quantities(self):
        local = LocalProtocol((2, 1), (1, 2))
        assert local.k == 2
        assert local.period == 6
        assert local.left_total == 3
        assert local.right_total == 3

    def test_periodic_extension(self):
        local = LocalProtocol((2, 1), (1, 2))
        assert local.left(0) == 2
        assert local.left(2) == 2
        assert local.left(5) == 1
        assert local.right(3) == 2

    def test_negative_index_rejected(self):
        local = LocalProtocol((1,), (1,))
        with pytest.raises(ProtocolError):
            local.left(-1)

    def test_delay_same_block_is_one(self):
        local = LocalProtocol((2, 1), (1, 2))
        assert local.delay(0, 0) == 1
        assert local.delay(3, 3) == 1

    def test_delay_next_block(self):
        local = LocalProtocol((2, 1), (1, 2))
        # d_{0,1} = 1 + r_0 + l_1 = 1 + 1 + 1 = 3
        assert local.delay(0, 1) == 3
        # d_{1,2} = 1 + r_1 + l_2 = 1 + 2 + 2 = 5
        assert local.delay(1, 2) == 5

    def test_delay_requires_ordered_indices(self):
        local = LocalProtocol((1,), (1,))
        with pytest.raises(ProtocolError):
            local.delay(2, 1)

    def test_activation_word_roundtrip(self):
        local = LocalProtocol((2, 1), (1, 2))
        word = local.activation_word()
        assert word == "LLRLRR"
        assert LocalProtocol.from_activation_word(word) == local

    def test_from_activation_word_rotation(self):
        # A rotation of the same periodic word parses to the same protocol.
        assert LocalProtocol.from_activation_word("RLLR") == LocalProtocol((2,), (2,))

    def test_from_activation_word_lowercase(self):
        assert LocalProtocol.from_activation_word("lr") == LocalProtocol((1,), (1,))

    def test_from_activation_word_invalid_symbols(self):
        with pytest.raises(ProtocolError):
            LocalProtocol.from_activation_word("LRX")

    def test_from_activation_word_single_symbol_rejected(self):
        with pytest.raises(ProtocolError):
            LocalProtocol.from_activation_word("LLLL")
        with pytest.raises(ProtocolError):
            LocalProtocol.from_activation_word("")

    def test_balanced(self):
        local = LocalProtocol.balanced(5)
        assert local.left_blocks == (3,)
        assert local.right_blocks == (2,)
        with pytest.raises(ProtocolError):
            LocalProtocol.balanced(1)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            LocalProtocol((1, 2), (1,))
        with pytest.raises(ProtocolError):
            LocalProtocol((), ())
        with pytest.raises(ProtocolError):
            LocalProtocol((0,), (1,))


class TestMatrixConstruction:
    def test_geometric_column(self):
        np.testing.assert_allclose(geometric_column(3, 0.5), [1.0, 0.5, 0.25])
        assert geometric_column(0, 0.5).shape == (0,)
        with pytest.raises(BoundComputationError):
            geometric_column(-1, 0.5)

    def test_matrix_shapes(self):
        local = LocalProtocol((2, 1), (1, 2))
        h = 4
        mx = local_delay_matrix(local, 0.5, h)
        rows = sum(local.left(i) for i in range(h))
        cols = sum(local.right(j) for j in range(h))
        assert mx.shape == (rows, cols)
        assert reduced_right_matrix(local, 0.5, h).shape == (h, h)
        assert reduced_left_matrix(local, 0.5, h).shape == (h, h)
        assert semi_eigenvector(local, 0.5, h).shape == (h,)

    def test_h_below_k_rejected(self):
        local = LocalProtocol((1, 1), (1, 1))
        with pytest.raises(BoundComputationError):
            local_delay_matrix(local, 0.5, 1)

    def test_band_structure_of_reduced_matrices(self):
        local = LocalProtocol((1, 2), (2, 1))
        h, k = 5, local.k
        n_matrix = reduced_right_matrix(local, 0.4, h)
        o_matrix = reduced_left_matrix(local, 0.4, h)
        for i in range(h):
            for j in range(h):
                if j < i or j >= i + k:
                    assert n_matrix[i, j] == 0.0
                else:
                    assert n_matrix[i, j] > 0.0
                if j <= i - k or j > i:
                    assert o_matrix[i, j] == 0.0
                else:
                    assert o_matrix[i, j] > 0.0

    def test_single_block_matrix_entries(self):
        # k = 1, l = r = 1: the local matrix is upper-triangular-banded with
        # entries λ^{d(i,j)} where consecutive blocks are 2 rounds apart.
        local = LocalProtocol((1,), (1,))
        lam = 0.5
        mx = local_delay_matrix(local, lam, 3)
        expected = np.array(
            [[lam, 0.0, 0.0], [0.0, lam, 0.0], [0.0, 0.0, lam]]
        )
        np.testing.assert_allclose(mx, expected)

    def test_block_entry_formula(self):
        local = LocalProtocol((2,), (2,))
        lam = 0.7
        mx = local_delay_matrix(local, lam, 2)
        # Block B_{0,0}: λ^{d_{0,0}} * outer((1, λ), (1, λ)) with d = 1.
        expected_block = lam * np.outer([1, lam], [1, lam])
        np.testing.assert_allclose(mx[:2, :2], expected_block)
        # Block B_{1,0} must be zero (j < i).
        np.testing.assert_allclose(mx[2:, :2], 0.0)

    @pytest.mark.parametrize("local", SAMPLE_PROTOCOLS, ids=lambda p: p.activation_word())
    @pytest.mark.parametrize("lam", SAMPLE_LAMBDAS)
    def test_reductions_equal_restriction_products(self, local, lam):
        """Nx = M' P and Ox = (Mxᵀ)' Q, as in the construction of Section 4."""
        h = 3 * local.k
        mx = local_delay_matrix(local, lam, h)
        p_matrix, q_matrix = restriction_matrices(local, lam, h)

        left_sizes = [local.left(i) for i in range(h)]
        right_sizes = [local.right(j) for j in range(h)]
        row_offsets = np.concatenate(([0], np.cumsum(left_sizes)))[:-1]
        col_offsets = np.concatenate(([0], np.cumsum(right_sizes)))[:-1]

        m_prime = mx[row_offsets, :]          # first row of every left block
        n_closed = reduced_right_matrix(local, lam, h)
        np.testing.assert_allclose(m_prime @ p_matrix, n_closed, atol=1e-12)

        mt_prime = mx.T[col_offsets, :]       # first column of every right block
        o_closed = reduced_left_matrix(local, lam, h)
        np.testing.assert_allclose(mt_prime @ q_matrix, o_closed, atol=1e-12)


class TestLemma42:
    @pytest.mark.parametrize("local", SAMPLE_PROTOCOLS, ids=lambda p: p.activation_word())
    @pytest.mark.parametrize("lam", SAMPLE_LAMBDAS)
    def test_semi_eigenvector_inequalities(self, local, lam):
        report = verify_lemma_42(local, lam)
        assert report["right_holds"]
        assert report["left_holds"]

    def test_semi_eigenvalues_match_formula(self):
        local = LocalProtocol((2, 1), (1, 2))
        lam = 0.6
        report = verify_lemma_42(local, lam)
        assert report["right_semi_eigenvalue"] == pytest.approx(
            lam * p_polynomial(local.right_total, lam)
        )
        assert report["left_semi_eigenvalue"] == pytest.approx(
            lam * p_polynomial(local.left_total, lam)
        )

    def test_interior_components_are_tight(self):
        # For components away from the matrix boundary the semi-eigenvector
        # relation holds with equality (the paper's computation).
        local = LocalProtocol((1, 2), (2, 1))
        lam = 0.55
        h = 6
        e = semi_eigenvector(local, lam, h)
        n_matrix = reduced_right_matrix(local, lam, h)
        value = lam * p_polynomial(local.right_total, lam)
        image = n_matrix @ e
        for i in range(h - local.k):
            assert image[i] == pytest.approx(value * e[i], rel=1e-10)


class TestLemma43:
    @pytest.mark.parametrize("local", SAMPLE_PROTOCOLS, ids=lambda p: p.activation_word())
    @pytest.mark.parametrize("lam", SAMPLE_LAMBDAS)
    def test_norm_bound_holds(self, local, lam):
        report = verify_lemma_43(local, lam)
        assert report["own_split_holds"]
        assert report["worst_split_holds"]
        assert report["reduction_consistent"]

    @pytest.mark.parametrize("local", SAMPLE_PROTOCOLS, ids=lambda p: p.activation_word())
    def test_reduced_radius_equals_gram_radius(self, local):
        lam = 0.618
        h = 3 * local.k
        mx = local_delay_matrix(local, lam, h)
        reduced = reduced_left_matrix(local, lam, h) @ reduced_right_matrix(local, lam, h)
        assert spectral_radius(reduced) == pytest.approx(
            spectral_radius(mx.T @ mx), rel=1e-8
        )

    def test_local_norm_matches_direct_svd(self):
        local = LocalProtocol((2, 1), (1, 2))
        lam = 0.5
        assert local_norm(local, lam) == pytest.approx(
            euclidean_norm(local_delay_matrix(local, lam)), rel=1e-12
        )

    def test_norm_grows_with_more_blocks_but_stays_bounded(self):
        local = LocalProtocol.balanced(6)
        lam = 0.6369  # ≈ root for s = 6
        bound = norm_bound_product(3, 3, lam)
        previous = 0.0
        for h in (1, 2, 4, 8):
            value = local_norm(local, lam, h)
            assert value >= previous - 1e-12
            assert value <= bound + 1e-9
            previous = value

    def test_balanced_protocol_nearly_attains_bound(self):
        # The balanced single-block protocol is the extremal case: with many
        # blocks its norm approaches λ √p_⌈s/2⌉ √p_⌊s/2⌋.
        s = 4
        lam = 0.682
        bound = norm_bound_product(2, 2, lam)
        value = local_norm(LocalProtocol.balanced(s), lam, 30)
        assert value == pytest.approx(bound, rel=0.02)
        assert value <= bound + 1e-9
