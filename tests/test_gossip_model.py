"""Tests for the protocol model (repro.gossip.model)."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError
from repro.gossip.model import GossipProtocol, Mode, SystolicSchedule, make_round
from repro.topologies.classic import cycle_graph, path_graph
from repro.topologies.debruijn import de_bruijn_digraph


class TestMakeRound:
    def test_normalises_to_tuple(self):
        assert make_round([(0, 1), (2, 3)]) == ((0, 1), (2, 3))

    def test_empty_round_allowed(self):
        assert make_round([]) == ()

    def test_duplicate_arc_rejected(self):
        with pytest.raises(ProtocolError):
            make_round([(0, 1), (0, 1)])


class TestGossipProtocol:
    def test_length_and_round_access(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(2, 3)]], mode=Mode.HALF_DUPLEX)
        assert protocol.length == 3
        assert protocol.round(1) == ((0, 1),)
        assert protocol.round(3) == ((2, 3),)
        assert protocol.arcs_at(2) == ((1, 2),)

    def test_round_index_out_of_range(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)]])
        with pytest.raises(ProtocolError):
            protocol.round(0)
        with pytest.raises(ProtocolError):
            protocol.round(2)

    def test_unknown_arc_rejected(self):
        g = path_graph(3)
        with pytest.raises(ProtocolError):
            GossipProtocol(g, [[(0, 2)]])

    def test_half_duplex_requires_symmetric_graph(self):
        directed = de_bruijn_digraph(2, 3)
        with pytest.raises(ProtocolError):
            GossipProtocol(directed, [[]], mode=Mode.HALF_DUPLEX)

    def test_directed_mode_allows_asymmetric_graph(self):
        directed = de_bruijn_digraph(2, 3)
        protocol = GossipProtocol(directed, [[("000", "001")]], mode=Mode.DIRECTED)
        assert protocol.length == 1

    def test_active_arcs(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(0, 1)]])
        assert protocol.active_arcs() == {(0, 1), (1, 2)}

    def test_is_systolic_true(self):
        g = path_graph(4)
        rounds = [[(0, 1)], [(2, 3)], [(0, 1)], [(2, 3)], [(0, 1)]]
        protocol = GossipProtocol(g, rounds)
        assert protocol.is_systolic(2)
        assert not protocol.is_systolic(3)

    def test_is_systolic_compares_round_sets_not_order(self):
        g = path_graph(5)
        rounds = [[(0, 1), (2, 3)], [(3, 4)], [(2, 3), (0, 1)], [(3, 4)]]
        protocol = GossipProtocol(g, rounds)
        assert protocol.is_systolic(2)

    def test_is_systolic_invalid_period(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)]])
        with pytest.raises(ProtocolError):
            protocol.is_systolic(0)

    def test_minimal_period(self):
        g = path_graph(4)
        rounds = [[(0, 1)], [(2, 3)], [(0, 1)], [(2, 3)]]
        assert GossipProtocol(g, rounds).minimal_period() == 2
        aperiodic = GossipProtocol(g, [[(0, 1)], [(2, 3)], [(1, 2)]])
        assert aperiodic.minimal_period() == 3

    def test_truncate(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(2, 3)]])
        shorter = protocol.truncate(2)
        assert shorter.length == 2
        with pytest.raises(ProtocolError):
            protocol.truncate(5)

    def test_extend(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)]])
        longer = protocol.extend([[(1, 2)], [(2, 3)]])
        assert longer.length == 3
        assert longer.round(3) == ((2, 3),)

    def test_len_dunder(self):
        g = path_graph(3)
        assert len(GossipProtocol(g, [[(0, 1)], [(1, 2)]])) == 2


class TestSystolicSchedule:
    def test_period(self):
        g = cycle_graph(4)
        schedule = SystolicSchedule(g, [[(0, 1), (2, 3)], [(1, 2), (3, 0)]])
        assert schedule.period == 2

    def test_round_wraps_around(self):
        g = cycle_graph(4)
        schedule = SystolicSchedule(g, [[(0, 1)], [(1, 2)]])
        assert schedule.round(1) == schedule.round(3) == schedule.round(5)
        assert schedule.round(2) == schedule.round(4)

    def test_round_index_must_be_positive(self):
        g = cycle_graph(4)
        schedule = SystolicSchedule(g, [[(0, 1)]])
        with pytest.raises(ProtocolError):
            schedule.round(0)

    def test_unroll_is_systolic(self):
        g = cycle_graph(4)
        schedule = SystolicSchedule(g, [[(0, 1)], [(1, 2)], [(2, 3)]])
        protocol = schedule.unroll(10)
        assert protocol.length == 10
        assert protocol.is_systolic(3)
        assert protocol.minimal_period() == 3

    def test_unroll_zero_length(self):
        g = cycle_graph(4)
        schedule = SystolicSchedule(g, [[(0, 1)]])
        assert schedule.unroll(0).length == 0

    def test_unroll_negative_rejected(self):
        g = cycle_graph(4)
        schedule = SystolicSchedule(g, [[(0, 1)]])
        with pytest.raises(ProtocolError):
            schedule.unroll(-1)

    def test_empty_base_rounds_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ProtocolError):
            SystolicSchedule(g, [])

    def test_invalid_arcs_rejected_at_construction(self):
        g = path_graph(3)
        with pytest.raises(ProtocolError):
            SystolicSchedule(g, [[(0, 2)]])
