"""Tests for the lazy arrival-matrix views (ArrivalRounds / ArrivalTimesView).

The views replaced the eager n×n Python tuple materialisation; these tests
pin the compatibility contract — indexing, iteration, equality and the
omission of unreached vertices behave exactly like the nested tuples/dicts
did — plus the new ``.to_numpy()`` escape hatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gossip.analysis import ArrivalTimesView, all_arrival_times, arrival_times
from repro.gossip.engines import available_engines, get_engine
from repro.gossip.engines.base import ArrivalRounds, RoundProgram
from repro.gossip.model import GossipProtocol, Mode
from repro.protocols.cycle import cycle_systolic_schedule
from repro.topologies.classic import path_graph


def _tracked(engine: str, schedule=None):
    schedule = schedule or cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
    program = RoundProgram.from_schedule(schedule)
    return get_engine(engine).run(program, track_history=False, track_arrivals=True)


class TestArrivalRounds:
    def test_indexing_and_iteration_match_tuples(self):
        result = _tracked("reference")
        view = result.arrival_rounds
        assert isinstance(view, ArrivalRounds)
        assert len(view) == 8
        rows = tuple(view)
        for i in range(8):
            assert view[i] == rows[i]
            assert isinstance(view[i], tuple)
            assert view[i][i] == 0  # own item known at round 0
        assert view[-1] == rows[-1]
        assert view[1:3] == rows[1:3]

    def test_equality_across_backings(self):
        per_engine = {engine: _tracked(engine).arrival_rounds for engine in available_engines()}
        reference = per_engine["reference"]
        for engine, view in per_engine.items():
            assert view == reference, engine
            assert reference == view, engine

    def test_equality_with_plain_tuples(self):
        view = _tracked("vectorized").arrival_rounds
        as_tuples = tuple(tuple(row) for row in view)
        assert view == as_tuples
        assert not (view == as_tuples[:-1])
        assert view != 42
        assert view != tuple(range(len(view)))  # flat sequence: False, not TypeError

    def test_to_numpy_is_int64_with_minus_one_for_missing(self):
        graph = path_graph(4)
        protocol = GossipProtocol(graph, [[(0, 1)]], mode=Mode.DIRECTED)
        for engine in available_engines():
            result = get_engine(engine).run(
                RoundProgram.from_protocol(protocol),
                track_history=False,
                track_arrivals=True,
            )
            array = result.arrival_rounds.to_numpy()
            assert array.dtype == np.int64
            assert array.shape == (4, 4)
            assert array[1, 0] == 1  # vertex 1 learns item 0 in round 1
            assert array[2, 0] == -1  # never reaches vertex 2
            assert result.arrival_rounds[2][0] is None
            assert not array.flags.writeable

    def test_array_backing_is_zero_copy(self):
        view = _tracked("frontier").arrival_rounds
        assert view.to_numpy() is view.to_numpy()

    def test_constructor_does_not_freeze_the_callers_array(self):
        source = np.zeros((3, 3), dtype=np.int64)
        view = ArrivalRounds(source)
        source[0, 0] = 7  # caller's buffer stays writeable...
        assert not view.to_numpy().flags.writeable  # ...the view does not

    def test_column_matches_row_extraction(self):
        view = _tracked("vectorized").arrival_rounds
        for j in (0, 3, 7):
            assert view.column(j) == tuple(row[j] for row in view)

    def test_hashable_like_the_tuples_it_replaced(self):
        a = _tracked("reference").arrival_rounds
        b = _tracked("vectorized").arrival_rounds
        assert hash(a) == hash(b)


class TestArrivalTimesView:
    def test_mapping_protocol(self):
        schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
        view = all_arrival_times(schedule)
        assert isinstance(view, ArrivalTimesView)
        assert len(view) == 8
        assert set(view) == set(schedule.graph.vertices)
        assert 0 in view and 99 not in view
        with pytest.raises(KeyError):
            view[99]

    def test_matches_eager_dict_semantics(self):
        schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
        view = all_arrival_times(schedule)
        eager = {
            source: arrival_times(schedule, source)
            for source in schedule.graph.vertices
        }
        assert dict(view) == eager
        assert view == eager  # Mapping equality

    def test_inner_dicts_are_cached(self):
        view = all_arrival_times(cycle_systolic_schedule(8, Mode.HALF_DUPLEX))
        assert view[0] is view[0]

    def test_to_numpy_roundtrip(self):
        schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
        view = all_arrival_times(schedule)
        array = view.to_numpy()
        graph = schedule.graph
        for source in graph.vertices:
            j = graph.index(source)
            for vertex, round_number in view[source].items():
                assert array[graph.index(vertex), j] == round_number
