"""Tests for distance / degree / connectivity helpers (repro.topologies.properties)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topologies.base import Digraph
from repro.topologies.classic import complete_graph, cycle_graph, path_graph, star_graph
from repro.topologies.debruijn import de_bruijn_digraph
from repro.topologies.properties import (
    all_pairs_distances,
    degree_parameter,
    diameter,
    distances_from,
    eccentricity,
    in_degrees,
    is_regular,
    is_strongly_connected,
    is_symmetric,
    max_degree,
    out_degrees,
    set_distance,
)


class TestDistances:
    def test_distances_from_path_endpoint(self):
        g = path_graph(5)
        dist = distances_from(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_respect_direction(self):
        g = Digraph([0, 1, 2], [(0, 1), (1, 2)])
        assert distances_from(g, 0) == {0: 0, 1: 1, 2: 2}
        assert distances_from(g, 2) == {2: 0}

    def test_unknown_source_raises(self):
        with pytest.raises(TopologyError):
            distances_from(path_graph(3), 99)

    def test_all_pairs_matches_single_source(self):
        g = cycle_graph(7)
        matrix = all_pairs_distances(g)
        for v in g.vertices:
            single = distances_from(g, v)
            for w in g.vertices:
                assert matrix[g.index(v), g.index(w)] == single[w]

    def test_all_pairs_unreachable_marked(self):
        g = Digraph([0, 1], [(0, 1)])
        matrix = all_pairs_distances(g)
        assert matrix[1, 0] == -1

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2

    def test_eccentricity_unreachable_raises(self):
        g = Digraph([0, 1], [(0, 1)])
        with pytest.raises(TopologyError):
            eccentricity(g, 1)

    def test_diameter_complete(self):
        assert diameter(complete_graph(4)) == 1

    def test_diameter_directed_de_bruijn(self):
        assert diameter(de_bruijn_digraph(2, 4)) == 4


class TestSetDistance:
    def test_basic(self):
        g = path_graph(10)
        assert set_distance(g, [0, 1], [8, 9]) == 7

    def test_overlapping_sets_distance_zero(self):
        g = path_graph(4)
        assert set_distance(g, [0, 1], [1, 2]) == 0

    def test_unreachable_returns_minus_one(self):
        g = Digraph([0, 1, 2], [(0, 1)])
        assert set_distance(g, [2], [0]) == -1

    def test_empty_sets_raise(self):
        g = path_graph(3)
        with pytest.raises(TopologyError):
            set_distance(g, [], [1])
        with pytest.raises(TopologyError):
            set_distance(g, [0], [])

    def test_unknown_vertices_raise(self):
        g = path_graph(3)
        with pytest.raises(TopologyError):
            set_distance(g, [99], [1])
        with pytest.raises(TopologyError):
            set_distance(g, [0], [99])


class TestDegrees:
    def test_out_and_in_degrees_star(self):
        g = star_graph(5)
        outs = out_degrees(g)
        ins = in_degrees(g)
        assert outs[0] == 4
        assert ins[0] == 4
        assert all(outs[i] == 1 for i in range(1, 5))

    def test_max_degree(self):
        assert max_degree(star_graph(6)) == 5

    def test_degree_parameter_undirected(self):
        # undirected: max degree minus one
        assert degree_parameter(cycle_graph(5)) == 1
        assert degree_parameter(star_graph(5)) == 3

    def test_degree_parameter_directed(self):
        # directed: max out-degree
        assert degree_parameter(de_bruijn_digraph(2, 3)) == 2

    def test_is_regular(self):
        assert is_regular(cycle_graph(5))
        assert not is_regular(star_graph(4))


class TestConnectivity:
    def test_symmetric(self):
        assert is_symmetric(cycle_graph(4))
        assert not is_symmetric(de_bruijn_digraph(2, 3))

    def test_strongly_connected_true(self):
        assert is_strongly_connected(cycle_graph(5))

    def test_strongly_connected_false(self):
        g = Digraph([0, 1, 2], [(0, 1), (1, 2)])
        assert not is_strongly_connected(g)

    def test_strongly_connected_needs_reverse_reachability(self):
        # 0 reaches everything but nothing reaches 0
        g = Digraph([0, 1, 2], [(0, 1), (0, 2), (1, 2), (2, 1)])
        assert not is_strongly_connected(g)
