"""Unit and neutrality tests for the :mod:`repro.telemetry` subsystem.

Two families:

* **mechanics** — the recorder registry (NullRecorder default, ``recording``
  scoping), span nesting and parent attribution, the flush-once counter
  contract, :class:`RunStats` merging/formatting, the JSONL sink, schema
  validation and the Chrome trace exporter.
* **neutrality** — recording telemetry must never change results.  Engine
  neutrality is registry-parametrized (whole-``SimulationResult`` equality:
  ``run_stats`` is excluded from comparison by construction); search
  neutrality compares outcome fields (``SystolicSchedule`` equality is
  identity, so whole-result comparison is meaningless); Monte-Carlo
  neutrality compares whole :class:`FaultTrialResult` objects.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro import telemetry
from repro.faults import BernoulliArcFaults, monte_carlo
from repro.gossip.builders import edge_coloring_schedule
from repro.gossip.engines import (
    available_engines,
    explain_engine_selection,
    get_engine,
    resolve_engine,
)
from repro.gossip.engines.base import RoundProgram
from repro.gossip.model import Mode
from repro.search import hill_climb, synthesize_schedule
from repro.telemetry.trace import (
    EVENT_TYPES,
    TraceError,
    chrome_trace,
    iter_trace,
    read_stats,
    validate_event,
)
from repro.topologies.classic import cycle_graph


def _cycle_program(n: int) -> RoundProgram:
    schedule = edge_coloring_schedule(cycle_graph(n), Mode.HALF_DUPLEX)
    return RoundProgram.from_schedule(schedule)


# --------------------------------------------------------------------- #
# Recorder registry


def test_default_recorder_is_null():
    rec = telemetry.get_recorder()
    assert isinstance(rec, telemetry.NullRecorder)
    assert rec.enabled is False
    assert rec.stats is None


def test_recording_scopes_the_recorder():
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder) as installed:
        assert installed is recorder
        assert telemetry.get_recorder() is recorder
    assert isinstance(telemetry.get_recorder(), telemetry.NullRecorder)


def test_recording_restores_on_exception():
    recorder = telemetry.StatsRecorder()
    with pytest.raises(RuntimeError):
        with telemetry.recording(recorder):
            raise RuntimeError("boom")
    assert isinstance(telemetry.get_recorder(), telemetry.NullRecorder)


def test_module_level_helpers_are_noops_when_disabled():
    # Must not raise and must not record anywhere.
    telemetry.counters("engine.test", {"runs": 1})
    telemetry.event("nothing", detail=1)
    telemetry.record_span("nothing", 0)
    with telemetry.span("nothing") as span_id:
        assert span_id is None
    assert telemetry.current_span_id() is None


# --------------------------------------------------------------------- #
# Spans


def test_span_nesting_records_parent_ids():
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        with telemetry.span("outer") as outer_id:
            assert telemetry.current_span_id() == outer_id
            with telemetry.span("inner") as inner_id:
                assert telemetry.current_span_id() == inner_id
        assert telemetry.current_span_id() is None
    spans = {s.name: s for s in recorder.stats.spans}
    assert set(spans) == {"outer", "inner"}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id is None
    # Inner finishes first, so it is recorded first.
    assert recorder.stats.spans[0].name == "inner"
    assert spans["outer"].duration_ns >= spans["inner"].duration_ns >= 0


def test_record_span_attributes_to_enclosing_span():
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        with telemetry.span("outer") as outer_id:
            import time

            telemetry.record_span("leaf", time.perf_counter_ns(), engine="x")
            # record_span never becomes the current span.
            assert telemetry.current_span_id() == outer_id
    leaf = next(s for s in recorder.stats.spans if s.name == "leaf")
    assert leaf.parent_id == outer_id
    assert leaf.attrs["engine"] == "x"


# --------------------------------------------------------------------- #
# Counters and RunStats


def test_engine_flushes_counters_once_per_run():
    program = _cycle_program(12)
    engine = get_engine("reference")
    recorder = _CountingRecorder()
    with telemetry.recording(recorder):
        engine.run(program, track_history=False)
    assert recorder.flushes == [("engine.reference", 1)]


class _CountingRecorder(telemetry.Recorder):
    """Counts how many times each component flushed (the once-per-run contract)."""

    def __init__(self) -> None:
        super().__init__()
        self.flushes: list[tuple[str, int]] = []

    def counters(self, component, counts):
        super().counters(component, counts)
        for i, (seen, n) in enumerate(self.flushes):
            if seen == component:
                self.flushes[i] = (seen, n + 1)
                break
        else:
            self.flushes.append((component, 1))


def test_runstats_merge_sums_counters():
    a = telemetry.RunStats.single("engine.x", {"runs": 1, "rounds": 5})
    b = telemetry.RunStats.single("engine.x", {"runs": 2, "slots": 7})
    a.merge(b).merge(None)
    assert a.counters["engine.x"] == {"runs": 3, "rounds": 5, "slots": 7}
    assert a.counter("engine.x", "slots") == 7
    assert a.counter("engine.x", "missing", 42) == 42


def test_runstats_format_table_mentions_counters_and_spans():
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        with telemetry.span("phase.one"):
            telemetry.counters("engine.x", {"runs": 3})
    table = recorder.stats.format_table()
    assert "phase.one" in table
    assert "engine.x.runs" in table
    assert telemetry.RunStats().format_table() == "(no telemetry recorded)"


def test_recorder_logs_at_debug(caplog):
    recorder = telemetry.StatsRecorder()
    with caplog.at_level(logging.DEBUG, logger="repro.telemetry"):
        with telemetry.recording(recorder):
            telemetry.counters("engine.x", {"runs": 1})
    assert any("engine.x" in message for message in caplog.messages)


# --------------------------------------------------------------------- #
# JSONL sink, validation, Chrome export


def _traced_run(n: int = 12) -> tuple[telemetry.JsonlRecorder, str]:
    buffer = io.StringIO()
    recorder = telemetry.JsonlRecorder(buffer)
    program = _cycle_program(n)
    with telemetry.recording(recorder):
        with telemetry.span("test.root", n=n):
            resolve_engine("auto", program).run(program, track_history=False)
    recorder.close()
    return recorder, buffer.getvalue()


def test_jsonl_lines_all_validate():
    _, text = _traced_run()
    lines = [json.loads(line) for line in text.splitlines() if line]
    assert lines[0]["type"] == "meta"
    assert lines[0]["schema"] == telemetry.SCHEMA_TAG
    kinds = set()
    for lineno, obj in enumerate(lines, start=1):
        validate_event(obj, lineno)
        kinds.add(obj["type"])
    assert {"meta", "span", "counters", "event"} <= kinds


def test_read_stats_round_trips(tmp_path):
    recorder, text = _traced_run()
    path = tmp_path / "trace.jsonl"
    path.write_text(text)
    stats = read_stats(str(path))
    assert stats.counters == recorder.stats.counters
    assert [s.name for s in stats.spans] == [s.name for s in recorder.stats.spans]
    assert [e.name for e in stats.events] == [e.name for e in recorder.stats.events]


def test_validate_event_rejects_malformed():
    with pytest.raises(TraceError):
        validate_event(["not", "a", "dict"])
    with pytest.raises(TraceError):
        validate_event({"type": "mystery"})
    with pytest.raises(TraceError):
        validate_event({"type": "span", "name": "x"})  # missing keys
    with pytest.raises(TraceError):
        validate_event({"type": "meta", "schema": "other/9"})
    with pytest.raises(TraceError):
        validate_event(
            {"type": "counters", "component": "c", "counters": {"bad": "str"}}
        )
    for kind, keys in EVENT_TYPES.items():
        assert isinstance(keys, tuple)


def test_iter_trace_reports_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(TraceError, match="line 1"):
        list(iter_trace(str(path)))


def test_chrome_trace_structure(tmp_path):
    _, text = _traced_run()
    path = tmp_path / "trace.jsonl"
    path.write_text(text)
    converted = chrome_trace(iter_trace(str(path)))
    assert converted["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in converted["traceEvents"]}
    assert phases == {"X", "i"}
    complete = [e for e in converted["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in complete}
    assert {"test.root", "engine.run"} <= names
    child = next(e for e in complete if e["name"] == "engine.run")
    root = next(e for e in complete if e["name"] == "test.root")
    assert child["args"]["parent_span"] is not None
    assert root["dur"] >= child["dur"] > 0


# --------------------------------------------------------------------- #
# Neutrality: recording never changes results


@pytest.mark.parametrize("engine_name", available_engines())
def test_engine_results_identical_under_recording(engine_name):
    program = _cycle_program(20)
    engine = get_engine(engine_name)
    off = engine.run(program, track_history=True, track_item_completion=True)
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        on = engine.run(program, track_history=True, track_item_completion=True)
    assert off == on  # run_stats is compare=False by construction
    assert off.run_stats is None
    assert on.run_stats is not None
    component = f"engine.{engine_name}"
    assert recorder.stats.counter(component, "runs") == 1
    assert recorder.stats.counter(component, "rounds_simulated") > 0
    assert on.run_stats.counter(component, "runs") == 1


def test_search_outcomes_identical_under_recording():
    graph = cycle_graph(10)
    off = synthesize_schedule(graph, Mode.HALF_DUPLEX, seed=1, max_iters=20)
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        on = synthesize_schedule(graph, Mode.HALF_DUPLEX, seed=1, max_iters=20)
    # SystolicSchedule equality is identity; compare outcome fields.
    assert on.schedule.base_rounds == off.schedule.base_rounds
    assert on.objective == off.objective
    assert on.history == off.history
    assert on.evaluations == off.evaluations
    assert on.iterations == off.iterations
    assert off.run_stats is None
    assert on.run_stats is not None
    assert any(c.startswith("search.") for c in recorder.stats.counters)
    assert any(c.startswith("engine.") for c in recorder.stats.counters)


def test_incremental_search_reports_checkpoint_reuse():
    schedule = edge_coloring_schedule(cycle_graph(16), Mode.HALF_DUPLEX)
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        hill_climb(
            schedule, seed=0, engine="frontier", max_iters=25, incremental=True
        )
    stats = recorder.stats
    assert stats.counter("search.incremental", "evaluations") > 0
    hits = stats.counter("search.incremental", "checkpoint_hits")
    misses = stats.counter("search.incremental", "checkpoint_misses")
    assert hits + misses > 0
    if hits:
        assert stats.counter("search.incremental", "reused_rounds") > 0


def test_monte_carlo_identical_under_recording():
    schedule = edge_coloring_schedule(cycle_graph(24), Mode.HALF_DUPLEX)
    model = BernoulliArcFaults(0.1)
    off = monte_carlo(schedule, model, trials=20, seed=3)
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        on = monte_carlo(schedule, model, trials=20, seed=3)
    assert off == on
    counters = recorder.stats.counters["faults.montecarlo"]
    assert counters["trials"] == 20
    assert counters["batches"] > 0
    assert counters["exact_replays"] == counters["completed"]
    assert any(s.name == "faults.monte_carlo" for s in recorder.stats.spans)


# --------------------------------------------------------------------- #
# Engine-resolution rationale


def test_engine_resolve_event_explains_auto_choice():
    program = _cycle_program(16)
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        resolved = resolve_engine("auto", program)
    events = [e for e in recorder.stats.events if e.name == "engine.resolve"]
    assert len(events) == 1
    attrs = events[0].attrs
    assert attrs["resolved"] == resolved.name
    assert attrs["source"] == "auto-program"
    expected_name, expected_rationale = explain_engine_selection(
        program,
        track_history=False,
        track_item_completion=False,
        track_arrivals=False,
    )
    assert attrs["resolved"] == expected_name
    assert attrs["rationale"] == expected_rationale
    assert attrs["n"] == program.graph.n


def test_engine_resolve_event_explicit_and_env(monkeypatch):
    program = _cycle_program(16)
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        resolve_engine("reference", program)
    assert recorder.stats.events[-1].attrs["source"] == "explicit"

    monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
    recorder = telemetry.StatsRecorder()
    with telemetry.recording(recorder):
        resolved = resolve_engine("auto", program)
    assert resolved.name == "reference"
    assert recorder.stats.events[-1].attrs["source"] == "env"
