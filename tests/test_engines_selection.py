"""Workload-aware ``engine="auto"`` selection and resolution ergonomics.

Three layers are pinned here:

* the **decision function** (:func:`select_engine_name`) on fixtures taken
  straight from the measured crossover table in ROADMAP.md;
* **resolution precedence** — explicit names (case-insensitive) beat the
  ``REPRO_SIM_ENGINE`` override, which beats the decision function; bare
  resolution keeps the historical vectorized pick; unknown names raise an
  error that names the environment variable when that is where the bad
  spelling came from;
* **observability** — every entry point running under ``"auto"`` records a
  concrete registered backend in ``engine_name``, never the literal
  ``"auto"``, and dispatch never changes results.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.exceptions import SimulationError
from repro.faults import BernoulliArcFaults, monte_carlo
from repro.gossip.analysis import all_arrival_times, arrival_times, eccentricities
from repro.gossip.engines import (
    ENGINE_ENV_VAR,
    FrontierEngine,
    available_engines,
    engine_override,
    get_engine,
    is_auto_spec,
    resolve_engine,
    select_engine_name,
)
from repro.gossip.engines.base import RoundProgram
from repro.gossip.model import Mode
from repro.gossip.simulation import gossip_time, simulate, simulate_systolic
from repro.protocols.generic import coloring_systolic_schedule
from repro.topologies.classic import cycle_graph, grid_2d, hypercube, path_graph


@pytest.fixture(autouse=True)
def _no_env_override(monkeypatch):
    """Selection tests must not inherit a pinned CI environment."""
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)


def _program(graph, *, cyclic=True):
    schedule = coloring_systolic_schedule(graph, Mode.HALF_DUPLEX)
    program = RoundProgram.from_schedule(schedule)
    if not cyclic:
        return RoundProgram(
            program.graph, program.rounds, cyclic=False, max_rounds=len(program.rounds)
        )
    return program


class TestDecisionFunction:
    """Pins on crossover-table fixtures (ROADMAP.md)."""

    def test_tracked_cyclic_thin_degree_goes_frontier(self):
        # Cycles and paths have mean arc degree 2.0 ≤ 3.0; tracked runs on
        # them measured fastest on the frontier engine.
        for graph in (cycle_graph(64), path_graph(64)):
            program = _program(graph)
            assert select_engine_name(program, track_arrivals=True) == "frontier"
            assert (
                select_engine_name(program, track_item_completion=True) == "frontier"
            )

    def test_tracked_cyclic_thick_degree_goes_hybrid(self):
        # Hypercube(4) has mean arc degree 4.0 > 3.0 (the 16×256 grid of the
        # table is ≈ 3.87): word-granular windows beat per-pair routing.
        program = _program(hypercube(4))
        assert select_engine_name(program, track_arrivals=True) == "hybrid"

    def test_grid_crossover_row(self):
        # The measured grid row itself: tracked 16×256 went to hybrid.
        program = _program(grid_2d(16, 256))
        assert select_engine_name(program, track_item_completion=True) == "hybrid"

    def test_plain_cyclic_cache_resident_goes_vectorized(self):
        # n = 64: packed matrix is tiny; the dense kernel wins plain runs.
        assert select_engine_name(_program(cycle_graph(64))) == "vectorized"

    def test_plain_cyclic_cache_spilling_goes_hybrid(self):
        # n = 8192: packed matrix is 8 MiB > the 4 MiB crossover.
        assert select_engine_name(_program(cycle_graph(8192))) == "hybrid"

    def test_finite_program_always_vectorized(self):
        # Finite programs never refire a slot, so sparse windows cannot pay.
        program = _program(cycle_graph(64), cyclic=False)
        assert select_engine_name(program) == "vectorized"
        assert select_engine_name(program, track_arrivals=True) == "vectorized"

    def test_track_history_does_not_change_the_pick(self):
        program = _program(cycle_graph(64))
        assert select_engine_name(program, track_history=True) == select_engine_name(
            program
        )


class TestResolutionPrecedence:
    def test_bare_resolution_keeps_historical_pick(self):
        assert resolve_engine().name == "vectorized"
        assert resolve_engine("auto").name == "vectorized"
        assert resolve_engine(None).name == "vectorized"

    def test_program_aware_resolution(self):
        program = _program(cycle_graph(64))
        assert resolve_engine("auto", program, track_arrivals=True).name == "frontier"
        assert resolve_engine(None, program).name == "vectorized"

    def test_engine_instances_pass_through(self):
        engine = FrontierEngine()
        assert resolve_engine(engine, _program(cycle_graph(8))) is engine

    def test_explicit_names_are_casefolded(self):
        assert resolve_engine(" Frontier ").name == "frontier"
        assert get_engine(" HYBRID ").name == "hybrid"

    def test_explicit_name_beats_program_aware_auto(self):
        program = _program(cycle_graph(64))
        assert resolve_engine("reference", program, track_arrivals=True).name == (
            "reference"
        )

    def test_env_override_beats_program_aware_auto(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "Reference")
        program = _program(cycle_graph(64))
        assert resolve_engine("auto", program, track_arrivals=True).name == "reference"

    def test_explicit_name_beats_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine("frontier").name == "frontier"

    def test_env_override_error_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "nosuch")
        with pytest.raises(SimulationError, match=ENGINE_ENV_VAR):
            resolve_engine("auto")

    def test_explicit_error_does_not_blame_the_environment(self):
        with pytest.raises(SimulationError) as excinfo:
            resolve_engine("nosuch")
        assert ENGINE_ENV_VAR not in str(excinfo.value)
        assert "nosuch" in str(excinfo.value)

    def test_is_auto_spec(self):
        assert is_auto_spec(None)
        assert is_auto_spec("auto")
        assert is_auto_spec(" AUTO ")
        assert not is_auto_spec("vectorized")
        assert not is_auto_spec(FrontierEngine())

    def test_engine_override_reads_environment(self, monkeypatch):
        assert engine_override() is None
        monkeypatch.setenv(ENGINE_ENV_VAR, "  ")
        assert engine_override() is None
        monkeypatch.setenv(ENGINE_ENV_VAR, "frontier")
        assert engine_override() == "frontier"


class TestAutoObservability:
    """``engine="auto"`` must always land a concrete registered name."""

    def test_simulate_records_concrete_engine(self):
        schedule = coloring_systolic_schedule(cycle_graph(8), Mode.HALF_DUPLEX)
        protocol = schedule.unroll(3)
        result = simulate(protocol, engine="auto")
        assert result.engine_name in available_engines()

    def test_simulate_systolic_records_concrete_engine(self):
        schedule = coloring_systolic_schedule(cycle_graph(8), Mode.HALF_DUPLEX)
        result = simulate_systolic(schedule, engine="auto")
        assert result.engine_name in available_engines()

    def test_tracked_analyses_dispatch_identically_to_reference(self):
        # auto sends tracked cyclic cycle runs to the frontier engine; the
        # values must match the oracle exactly (dispatch changes speed only).
        schedule = coloring_systolic_schedule(cycle_graph(10), Mode.HALF_DUPLEX)
        assert arrival_times(schedule, 0, engine="auto") == arrival_times(
            schedule, 0, engine="reference"
        )
        auto_all = all_arrival_times(schedule, engine="auto")
        ref_all = all_arrival_times(schedule, engine="reference")
        assert {v: auto_all[v] for v in schedule.graph.vertices} == {
            v: ref_all[v] for v in schedule.graph.vertices
        }
        assert eccentricities(schedule, engine="auto") == eccentricities(
            schedule, engine="reference"
        )
        assert gossip_time(schedule, engine="auto") == gossip_time(
            schedule, engine="reference"
        )

    def test_looped_monte_carlo_records_concrete_engine(self):
        schedule = coloring_systolic_schedule(cycle_graph(8), Mode.HALF_DUPLEX)
        result = monte_carlo(
            schedule,
            BernoulliArcFaults(0.1),
            trials=3,
            seed=1,
            method="looped",
            engine="auto",
        )
        assert result.engine_name in available_engines()


class TestMonteCarloDispatch:
    """Regression pins for the documented method/engine dispatch matrix."""

    def _schedule(self):
        return coloring_systolic_schedule(cycle_graph(8), Mode.HALF_DUPLEX)

    def _run(self, **kwargs):
        return monte_carlo(
            self._schedule(), BernoulliArcFaults(0.1), trials=3, seed=1, **kwargs
        )

    def test_auto_engine_takes_batched(self):
        for engine in (None, "auto", " AUTO "):
            assert self._run(engine=engine).engine_name == "montecarlo-batched"

    def test_explicit_engine_takes_looped(self):
        assert self._run(engine="reference").engine_name == "reference"
        assert self._run(engine=" Frontier ").engine_name == "frontier"

    def test_env_override_counts_as_specific_request(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert self._run(engine="auto").engine_name == "reference"

    def test_method_looped_with_auto_resolves_concretely(self):
        result = self._run(method="looped", engine="auto")
        assert result.engine_name in available_engines()

    def test_method_batched_is_explicitly_available(self):
        assert self._run(method="batched").engine_name == "montecarlo-batched"

    def test_dispatch_never_changes_results(self):
        batched = self._run(engine="auto")
        looped = self._run(method="looped", engine="vectorized")
        assert batched.completion_rounds == looped.completion_rounds
        assert batched.knowledge == looped.knowledge
