"""Incremental (checkpoint-resuming) evaluation must be invisible to search.

The incremental layer — :class:`repro.search.incremental.CheckpointCache`
plus the cached objective evaluator behind ``incremental=True`` — promises
that reusing engine checkpoints across candidates sharing a period prefix
changes evaluation *cost* only, never any score or search outcome.  This
suite pins that promise three ways:

* **move-chain fuzz** — random :class:`Neighborhood` walks (all engines,
  all objectives including ``robust_gossip_rounds``) must score every
  candidate of the chain identically through the prefix-reusing cached
  evaluator and through cold :func:`evaluate_program` calls; the same
  chains also pin ``first_modified_round`` / ``common_prefix_length``
  against each other;
* **driver determinism** — seeded ``hill_climb`` / ``simulated_annealing``
  / ``synthesize_schedule`` runs with and without ``incremental=True``
  return bit-identical winners, objective values, improvement histories
  and iteration counts on every engine;
* **unit semantics** — prefix arithmetic, power-of-two checkpoint rounds,
  cache LRU/agreement/round-bound rules, memoization and the bounded-
  cutoff sentinel (exact at the cutoff, ``inf`` and unmemoized beyond it).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BernoulliArcFaults
from repro.gossip.builders import random_systolic_schedule
from repro.gossip.engines import get_engine
from repro.gossip.model import Mode
from repro.search import (
    CheckpointCache,
    Neighborhood,
    RobustnessSpec,
    evaluate_candidates,
    hill_climb,
    simulated_annealing,
    synthesize_schedule,
)
from repro.search.incremental import default_checkpoint_rounds
from repro.search.moves import common_prefix_length
from repro.search.objective import (
    OBJECTIVES,
    _CachedObjective,
    evaluate_program,
    program_for_rounds,
)
from repro.topologies.classic import cycle_graph, grid_2d

ENGINES = ("reference", "vectorized", "frontier", "hybrid")

FUZZ = settings(max_examples=60, deadline=None, derandomize=True)


def _robustness(objective: str) -> RobustnessSpec | None:
    if objective != "robust_gossip_rounds":
        return None
    return RobustnessSpec(BernoulliArcFaults(0.2), trials=3, seed=1)


@st.composite
def move_chains(draw):
    """A seeded Neighborhood walk: start period plus every visited candidate."""
    graph = draw(st.sampled_from([cycle_graph(9), grid_2d(3, 3)]))
    mode = draw(st.sampled_from([Mode.HALF_DUPLEX, Mode.FULL_DUPLEX]))
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    neighborhood = Neighborhood(graph, mode, max_period=6)
    current = tuple(
        random_systolic_schedule(graph, draw(st.integers(2, 4)), mode, rng=rng).base_rounds
    )
    chain = [current]
    for _ in range(draw(st.integers(1, 10))):
        current = neighborhood.propose(current, rng)
        chain.append(current)
    return graph, chain


@FUZZ
@given(
    case=move_chains(),
    objective=st.sampled_from(OBJECTIVES),
    engine=st.sampled_from(ENGINES),
)
def test_fuzz_incremental_scores_match_cold_evaluation(case, objective, engine):
    """Every candidate of a random walk scores identically through the
    checkpoint-reusing cached evaluator and through cold runs."""
    graph, chain = case
    resolved = get_engine(engine)
    robustness = _robustness(objective)
    cached = _CachedObjective(graph, resolved, objective, robustness)
    for candidate in chain:
        cold = evaluate_program(
            program_for_rounds(graph, candidate),
            resolved,
            objective=objective,
            robustness=robustness,
        )
        assert cached(candidate) == cold, (engine, objective, candidate)


@FUZZ
@given(case=move_chains())
def test_fuzz_first_modified_round_bounds_the_shared_prefix(case):
    """``first_modified_round`` is exactly one past the common prefix, and a
    ``None`` marks the no-op proposals ``propose`` returns on dead ends."""
    _, chain = case
    for before, after in zip(chain, chain[1:]):
        first = Neighborhood.first_modified_round(before, after)
        if first is None:
            assert before == after
            continue
        shared = common_prefix_length(before, after)
        assert first == shared + 1
        assert before[:shared] == after[:shared]
        assert shared == min(len(before), len(after)) or (
            before[shared] != after[shared]
        )


class TestDriverDeterminism:
    """Incremental and full-replay searches visit identical state sequences:
    same winner, same objective, same improvement history, same iteration
    count — on every engine, for the same seed."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", range(3))
    def test_hill_climb_identical(self, engine, seed):
        schedule = random_systolic_schedule(
            cycle_graph(9), 3, Mode.HALF_DUPLEX, seed=seed
        )
        full = hill_climb(schedule, seed=seed, engine=engine, max_iters=60)
        fast = hill_climb(
            schedule, seed=seed, engine=engine, max_iters=60, incremental=True
        )
        assert full.schedule.base_rounds == fast.schedule.base_rounds
        assert full.objective == fast.objective
        assert full.history == fast.history
        assert full.iterations == fast.iterations

    @pytest.mark.parametrize("engine", ENGINES)
    def test_simulated_annealing_identical(self, engine):
        schedule = random_systolic_schedule(grid_2d(3, 3), 3, Mode.FULL_DUPLEX, seed=4)
        full = simulated_annealing(
            schedule, seed=11, engine=engine, max_iters=50, restarts=1
        )
        fast = simulated_annealing(
            schedule, seed=11, engine=engine, max_iters=50, restarts=1, incremental=True
        )
        assert full.schedule.base_rounds == fast.schedule.base_rounds
        assert full.objective == fast.objective
        assert full.history == fast.history

    @pytest.mark.parametrize("strategy", ["hill", "anneal"])
    def test_synthesize_schedule_identical(self, strategy):
        kwargs = dict(strategy=strategy, seed=2, max_iters=50, engine="hybrid")
        full = synthesize_schedule(cycle_graph(10), Mode.HALF_DUPLEX, **kwargs)
        fast = synthesize_schedule(
            cycle_graph(10), Mode.HALF_DUPLEX, incremental=True, **kwargs
        )
        assert full.schedule.base_rounds == fast.schedule.base_rounds
        assert full.objective == fast.objective
        assert full.history == fast.history
        assert full.seed_name == fast.seed_name

    def test_hill_climb_identical_under_robust_objective(self):
        schedule = random_systolic_schedule(cycle_graph(8), 3, Mode.HALF_DUPLEX, seed=6)
        spec = _robustness("robust_gossip_rounds")
        full = hill_climb(
            schedule,
            seed=6,
            engine="frontier",
            objective="robust_gossip_rounds",
            robustness=spec,
            max_iters=40,
        )
        fast = hill_climb(
            schedule,
            seed=6,
            engine="frontier",
            objective="robust_gossip_rounds",
            robustness=spec,
            max_iters=40,
            incremental=True,
        )
        assert full.schedule.base_rounds == fast.schedule.base_rounds
        assert full.objective == fast.objective
        assert full.history == fast.history

    def test_evaluate_candidates_incremental_parity(self):
        graph = cycle_graph(9)
        candidates = [
            random_systolic_schedule(graph, 3, Mode.HALF_DUPLEX, seed=i) for i in range(5)
        ]
        candidates.append(candidates[0])  # duplicates hit the memo
        plain = evaluate_candidates(candidates, engine="frontier")
        incremental = evaluate_candidates(candidates, engine="frontier", incremental=True)
        assert plain == incremental


class TestCachedObjective:
    def _evaluator(self, **kwargs) -> _CachedObjective:
        return _CachedObjective(cycle_graph(9), get_engine("frontier"), **kwargs)

    def test_memoizes_repeated_periods(self):
        evaluator = self._evaluator()
        period = tuple(
            random_systolic_schedule(cycle_graph(9), 3, Mode.HALF_DUPLEX, seed=0).base_rounds
        )
        first = evaluator(period)
        runs = evaluator.evaluations
        assert evaluator(period) == first
        assert evaluator.evaluations == runs  # the memo answered

    def test_prefix_reuse_registers_cache_hits(self):
        evaluator = self._evaluator()
        period = tuple(
            random_systolic_schedule(cycle_graph(9), 4, Mode.HALF_DUPLEX, seed=1).base_rounds
        )
        evaluator(period)
        # A move on the *last* slot shares the longest possible prefix.
        mutated = period[:-1] + (period[0],)
        assert mutated != period
        evaluator(mutated)
        assert evaluator.cache.hits >= 1

    def _completing_period(self):
        from repro.protocols.generic import coloring_systolic_schedule

        return tuple(
            coloring_systolic_schedule(cycle_graph(9), Mode.HALF_DUPLEX).base_rounds
        )

    def test_cutoff_at_completion_round_is_exact(self):
        evaluator = self._evaluator()
        period = self._completing_period()
        exact = evaluator(period)
        assert exact.complete
        bounded = self._evaluator()
        assert bounded(period, cutoff=exact.rounds) == exact

    def test_cutoff_below_completion_returns_unmemoized_sentinel(self):
        evaluator = self._evaluator()
        period = self._completing_period()
        exact_rounds = evaluator(period).rounds
        assert exact_rounds is not None and exact_rounds > 1
        bounded = self._evaluator()
        sentinel = bounded(period, cutoff=exact_rounds - 1)
        assert math.isinf(sentinel.score) and not sentinel.complete
        # The sentinel is not memoized: asking again without the cutoff
        # re-runs and returns the exact value.
        assert bounded(period).rounds == exact_rounds

    def test_cutoff_ignored_for_non_round_objectives(self):
        evaluator = self._evaluator(objective="max_eccentricity")
        period = tuple(
            random_systolic_schedule(cycle_graph(9), 3, Mode.HALF_DUPLEX, seed=3).base_rounds
        )
        assert evaluator(period, cutoff=1) == evaluator(period)

    def test_rejects_unknown_objective_and_missing_spec(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="unknown search objective"):
            self._evaluator(objective="fastest")
        with pytest.raises(SimulationError, match="RobustnessSpec"):
            self._evaluator(objective="robust_gossip_rounds")


class TestPrefixArithmetic:
    def test_common_prefix_length(self):
        a, b, c = ((0, 1),), ((1, 2),), ((2, 3),)
        assert common_prefix_length((a, b, c), (a, b, c)) == 3
        assert common_prefix_length((a, b, c), (a, b)) == 2
        assert common_prefix_length((a, b, c), (a, c, b)) == 1
        assert common_prefix_length((a,), (b,)) == 0
        assert common_prefix_length((), (a,)) == 0

    def test_first_modified_round(self):
        a, b, c = ((0, 1),), ((1, 2),), ((2, 3),)
        assert Neighborhood.first_modified_round((a, b), (a, b)) is None
        assert Neighborhood.first_modified_round((a, b), (a, c)) == 2
        assert Neighborhood.first_modified_round((a, b), (b, b)) == 1
        # A pure length change first diverges at the slot past the prefix.
        assert Neighborhood.first_modified_round((a, b), (a, b, c)) == 3

    def test_default_checkpoint_rounds(self):
        assert default_checkpoint_rounds(0) == []
        assert default_checkpoint_rounds(1) == [1]
        assert default_checkpoint_rounds(10) == [1, 2, 4, 8]
        assert default_checkpoint_rounds(16) == [1, 2, 4, 8, 16]


class TestCheckpointCache:
    def _state(self, round_number: int):
        # Structural stand-in: the cache never inspects knowledge.
        from repro.gossip.engines import EngineState

        return EngineState(
            round=round_number,
            knowledge=(1, 2),
            completion_round=None,
            target_mask=0b11,
            track_history=False,
            track_item_completion=False,
            track_arrivals=False,
        )

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CheckpointCache(max_periods=0)

    def test_lookup_miss_on_empty_cache(self):
        cache = CheckpointCache()
        deepest, usable = cache.lookup(((0, 1),))
        assert deepest is None and usable == {}
        assert cache.misses == 1 and cache.hits == 0

    def test_exact_period_reuses_every_round(self):
        cache = CheckpointCache()
        period = (((0, 1),), ((1, 2),))
        cache.record(period, [self._state(r) for r in (0, 1, 2, 4, 8)])
        deepest, usable = cache.lookup(period)
        # Round 0 is never returned (resuming it is just a cold start),
        # and depth is unlimited for the identical period.
        assert deepest.round == 8
        assert sorted(usable) == [1, 2, 4, 8]
        assert cache.hits == 1

    def test_prefix_agreement_bounds_reuse(self):
        cache = CheckpointCache()
        a, b, c = ((0, 1),), ((1, 2),), ((2, 3),)
        cache.record((a, b, c), [self._state(r) for r in (1, 2, 4)])
        # Agreement on the first two slots only: round 4 is out of reach.
        deepest, usable = cache.lookup((a, b, a, c))
        assert deepest.round == 2
        assert sorted(usable) == [1, 2]
        # No agreement at all: miss.
        deepest, usable = cache.lookup((b, a))
        assert deepest is None and usable == {}

    def test_max_round_bound_applies(self):
        cache = CheckpointCache()
        period = (((0, 1),),)
        cache.record(period, [self._state(r) for r in (1, 2, 4)])
        deepest, _ = cache.lookup(period, max_round=3)
        assert deepest.round == 2

    def test_lru_eviction_keeps_recent_periods(self):
        cache = CheckpointCache(max_periods=2)
        p1, p2, p3 = (((0, 1),),), (((1, 2),),), (((2, 3),),)
        cache.record(p1, [self._state(1)])
        cache.record(p2, [self._state(1)])
        cache.record(p3, [self._state(1)])  # evicts p1
        assert len(cache) == 2
        assert cache.lookup(p1)[0] is None
        assert cache.lookup(p3)[0] is not None

    def test_record_merges_states_under_one_period(self):
        cache = CheckpointCache()
        period = (((0, 1),),)
        cache.record(period, [self._state(1)])
        cache.record(period, [self._state(2)])
        assert len(cache) == 1
        deepest, usable = cache.lookup(period)
        assert deepest.round == 2 and sorted(usable) == [1, 2]
