"""Tests for delay digraphs of concrete protocols (repro.core.delay)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delay import DelayDigraph, full_duplex_local_matrix
from repro.core.norms import euclidean_norm
from repro.core.polynomials import (
    full_duplex_norm_bound,
    half_duplex_norm_bound,
)
from repro.core.roots import solve_unit_root
from repro.exceptions import BoundComputationError
from repro.gossip.builders import random_systolic_schedule
from repro.gossip.model import GossipProtocol, Mode
from repro.protocols.cycle import cycle_systolic_schedule
from repro.protocols.hypercube import hypercube_dimension_exchange
from repro.protocols.path import path_systolic_schedule
from repro.topologies.classic import path_graph
from repro.topologies.debruijn import de_bruijn


class TestConstruction:
    def test_nodes_are_arc_activations(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(0, 1)]])
        delay = DelayDigraph(protocol, period=3)
        assert delay.num_nodes == 3
        labels = {delay.node_label(node) for node in delay.nodes}
        assert labels == {(0, 1, 1), (1, 2, 2), (0, 1, 3)}

    def test_arcs_respect_window(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)], [], [(1, 2)], [(0, 1)], [], [(1, 2)]])
        # The protocol is 3-systolic.  With the window s = 3, only the two
        # delay-2 arcs (0,1,i) -> (1,2,i+2) qualify; widening the window to
        # the whole protocol (s = 6) additionally admits (0,1,1) -> (1,2,6).
        assert DelayDigraph(protocol, period=3).num_arcs() == 2
        assert DelayDigraph(protocol, period=6).num_arcs() == 3

    def test_arcs_require_shared_middle_vertex(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)], [(2, 3)]])
        assert DelayDigraph(protocol, period=2).num_arcs() == 0

    def test_wrong_period_rejected(self):
        schedule = path_systolic_schedule(4, Mode.HALF_DUPLEX)
        protocol = schedule.unroll(8)
        with pytest.raises(BoundComputationError):
            DelayDigraph(protocol, period=3)

    def test_default_period_is_minimal(self):
        schedule = path_systolic_schedule(4, Mode.HALF_DUPLEX)
        protocol = schedule.unroll(8)
        delay = DelayDigraph(protocol)
        assert delay.period == 4

    def test_invalid_lambda_rejected(self):
        schedule = path_systolic_schedule(4, Mode.HALF_DUPLEX)
        delay = DelayDigraph(schedule.unroll(4))
        with pytest.raises(BoundComputationError):
            delay.norm(1.0)
        with pytest.raises(BoundComputationError):
            delay.delay_matrix(-0.1)


class TestDelayMatrix:
    def test_entries_are_lambda_powers(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)]])
        delay = DelayDigraph(protocol, period=2)
        lam = 0.5
        matrix = delay.delay_matrix(lam)
        assert matrix.shape == (2, 2)
        assert sorted(matrix.flatten().tolist()) == [0.0, 0.0, 0.0, 0.5]

    def test_blockwise_norm_equals_global_norm(self):
        # Norm property 8: the max local-block norm equals the norm of the
        # full delay matrix (after permutation, which does not change it).
        schedule = cycle_systolic_schedule(6, Mode.HALF_DUPLEX)
        protocol = schedule.unroll(3 * schedule.period)
        delay = DelayDigraph(protocol, period=schedule.period)
        lam = 0.6
        assert delay.norm(lam) == pytest.approx(
            euclidean_norm(delay.delay_matrix(lam)), rel=1e-9
        )

    def test_local_block_shape(self):
        schedule = path_systolic_schedule(4, Mode.HALF_DUPLEX)
        protocol = schedule.unroll(8)
        delay = DelayDigraph(protocol, period=4)
        block = delay.local_block(1, 0.5)
        # vertex 1 of P(4) has incoming and outgoing activations every period
        assert block.shape[0] > 0 and block.shape[1] > 0

    def test_vertex_without_throughput_has_zero_norm_contribution(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)]])
        delay = DelayDigraph(protocol, period=1)
        assert delay.vertices_with_activity() == []
        assert delay.norm(0.5) == 0.0

    def test_norm_monotone_in_lambda(self):
        schedule = cycle_systolic_schedule(8, Mode.HALF_DUPLEX)
        protocol = schedule.unroll(2 * schedule.period)
        delay = DelayDigraph(protocol, period=schedule.period)
        values = [delay.norm(lam) for lam in (0.2, 0.4, 0.6, 0.8)]
        assert values == sorted(values)


class TestLemma43OnConcreteProtocols:
    """``‖M(λ*)‖ ≤ 1`` at the analytic root, for real half-duplex schedules."""

    @pytest.mark.parametrize(
        "schedule_factory",
        [
            lambda: path_systolic_schedule(8, Mode.HALF_DUPLEX),
            lambda: cycle_systolic_schedule(8, Mode.HALF_DUPLEX),
            lambda: random_systolic_schedule(de_bruijn(2, 3), 6, Mode.HALF_DUPLEX, seed=11),
            lambda: random_systolic_schedule(de_bruijn(2, 3), 5, Mode.HALF_DUPLEX, seed=2),
        ],
    )
    def test_norm_at_analytic_root_at_most_one(self, schedule_factory):
        schedule = schedule_factory()
        s = schedule.period
        lam = solve_unit_root(lambda x: half_duplex_norm_bound(s, x))
        protocol = schedule.unroll(3 * s)
        delay = DelayDigraph(protocol, period=s)
        assert delay.norm(lam) <= 1.0 + 1e-9

    def test_full_duplex_norm_at_analytic_root_at_most_one(self):
        schedule = hypercube_dimension_exchange(3, Mode.FULL_DUPLEX)
        s = schedule.period
        lam = solve_unit_root(lambda x: full_duplex_norm_bound(s, x))
        delay = DelayDigraph(schedule.unroll(3 * s), period=s)
        assert delay.norm(lam) <= 1.0 + 1e-9


class TestFullDuplexLocalMatrix:
    def test_band_structure(self):
        matrix = full_duplex_local_matrix(3, 6, 0.5)
        for i in range(6):
            for j in range(6):
                if 1 <= j - i <= 2:
                    assert matrix[i, j] == pytest.approx(0.5 ** (j - i))
                else:
                    assert matrix[i, j] == 0.0

    def test_row_sums_bounded_by_lemma61(self):
        s, rounds, lam = 5, 12, 0.45
        matrix = full_duplex_local_matrix(s, rounds, lam)
        bound = full_duplex_norm_bound(s, lam)
        assert np.max(matrix.sum(axis=1)) <= bound + 1e-12

    def test_invalid_parameters(self):
        with pytest.raises(BoundComputationError):
            full_duplex_local_matrix(1, 5, 0.5)
        with pytest.raises(BoundComputationError):
            full_duplex_local_matrix(3, 0, 0.5)
        with pytest.raises(BoundComputationError):
            full_duplex_local_matrix(3, 5, 1.2)
