"""Unit tests for the shared layout transforms and workload statistics.

``repro.gossip.engines.layout`` factors the hybrid engine's BFS item-bit
permutation and the vectorized engine's row-locality permutation (plus the
O(1) statistics feeding the workload-aware ``"auto"`` decision function)
into one module.  These tests pin the transforms' contracts directly; the
registry-wide differential suites already certify that the engines using
them stay bit-exact.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.gossip.engines.layout import (
    bfs_item_positions,
    gather_bit_columns,
    mean_arc_degree,
    packed_matrix_bytes,
    packed_words,
    row_locality_permutation,
)
from repro.gossip.model import Mode
from repro.protocols.generic import coloring_systolic_schedule
from repro.topologies.base import Digraph
from repro.topologies.classic import cycle_graph, grid_2d, hypercube, path_graph


class TestBfsItemPositions:
    def test_identity_order_returns_none(self):
        # A path in natural vertex order IS its own BFS order from vertex 0.
        assert bfs_item_positions(path_graph(9)) is None

    def test_cycle_is_permuted(self):
        # BFS on a cycle alternates directions (0, 1, n-1, 2, ...), so the
        # map is a genuine non-identity permutation of the bit positions.
        n = 8
        pos = bfs_item_positions(cycle_graph(n))
        assert pos is not None
        assert sorted(pos.tolist()) == list(range(n))
        assert pos.tolist() != list(range(n))

    def test_disconnected_components_get_total_order(self):
        # Two disjoint 2-paths: every vertex must receive exactly one slot.
        graph = Digraph(range(4), [(0, 1), (1, 0), (2, 3), (3, 2)], name="2xP2")
        pos = bfs_item_positions(graph)
        assert pos is None or sorted(pos.tolist()) == list(range(4))

    def test_bfs_neighbours_are_close(self):
        # The transform exists for locality: in BFS order, the two cycle
        # neighbours of any vertex sit within distance 2 of it.
        n = 16
        pos = bfs_item_positions(cycle_graph(n))
        assert pos is not None
        for v in range(n):
            for w in ((v + 1) % n, (v - 1) % n):
                assert abs(int(pos[v]) - int(pos[w])) <= 2


class TestGatherBitColumns:
    def test_permutes_bits_exactly(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 2**63, size=(5, 1), dtype=np.uint64)
        colmap = rng.permutation(64).astype(np.int64)
        out = gather_bit_columns(rows, colmap)
        for i in range(rows.shape[0]):
            value = int(rows[i, 0])
            permuted = int(out[i, 0])
            for c in range(64):
                assert (permuted >> c) & 1 == (value >> int(colmap[c])) & 1

    def test_round_trips_through_inverse(self):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 2**63, size=(4, 2), dtype=np.uint64)
        colmap = rng.permutation(128).astype(np.int64)
        inverse = np.empty_like(colmap)
        inverse[colmap] = np.arange(128, dtype=np.int64)
        assert np.array_equal(
            gather_bit_columns(gather_bit_columns(rows, colmap), inverse), rows
        )


class TestRowLocalityPermutation:
    def test_inverse_consistency(self):
        graph = cycle_graph(10)
        rounds = coloring_systolic_schedule(graph, Mode.HALF_DUPLEX).base_rounds
        new_to_old, old_to_new = row_locality_permutation(graph, rounds)
        assert np.array_equal(old_to_new[new_to_old], np.arange(graph.n))
        assert np.array_equal(new_to_old[old_to_new], np.arange(graph.n))

    def test_first_round_heads_are_contiguous(self):
        graph = cycle_graph(12)
        rounds = coloring_systolic_schedule(graph, Mode.HALF_DUPLEX).base_rounds
        new_to_old, old_to_new = row_locality_permutation(graph, rounds)
        heads = {graph.index(h) for _, h in rounds[0]}
        positions = sorted(int(old_to_new[v]) for v in heads)
        # Heads occupy one contiguous block at the top of the new order.
        assert positions == list(range(graph.n - len(heads), graph.n))

    def test_all_empty_rounds_yield_identity(self):
        graph = path_graph(5)
        new_to_old, old_to_new = row_locality_permutation(graph, [(), ()])
        assert np.array_equal(new_to_old, np.arange(5))
        assert np.array_equal(old_to_new, np.arange(5))


class TestWorkloadStatistics:
    def test_mean_arc_degree_known_values(self):
        assert mean_arc_degree(cycle_graph(16)) == 2.0
        assert mean_arc_degree(path_graph(16)) == pytest.approx(30 / 16)
        assert mean_arc_degree(hypercube(4)) == 4.0
        # The crossover table's grid convention: 16×256 ≈ 3.87.
        grid = grid_2d(16, 256)
        assert mean_arc_degree(grid) == pytest.approx(grid.m / grid.n)
        assert 3.0 < mean_arc_degree(grid) < 4.0

    def test_packed_words(self):
        assert packed_words(0) == 1
        assert packed_words(1) == 1
        assert packed_words(64) == 1
        assert packed_words(65) == 2
        assert packed_words(4096) == 64

    def test_packed_matrix_bytes_crossover_rows(self):
        # The plain-run cache crossover separates the measured table rows:
        # n = 4096 is 2 MiB (vectorized wins), n = 8192 is 8 MiB (hybrid).
        assert packed_matrix_bytes(4096) == 2 << 20
        assert packed_matrix_bytes(8192) == 8 << 20
