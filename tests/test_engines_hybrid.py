"""Metamorphic properties of the hybrid active-word engine.

The differential and fuzz suites pin the hybrid engine to the reference
oracle; these tests check *semantic* invariants that hold independently of
any oracle, so they would still catch a bug shared by both implementations
— mirroring ``tests/test_engines_frontier.py`` for the frontier engine:

* **relabeling invariance** — permuting vertex labels (and hence both the
  engine's internal row indices and its BFS item-bit permutation) permutes
  the result but changes nothing observable: completion, executed rounds,
  the coverage curve, and each vertex's known-item *label* set are
  preserved;
* **threshold-0 ⇒ dense-path equivalence** — ``dense_threshold=0.0``
  degenerates the engine to an always-dense backend whose every observable
  field must match the default (sparse-capable) configuration bit for bit,
  so the sparse path can never drift from the dense one;
* **active-words-empty ⇒ fixed point** — once a full period passes without
  any changed word, knowledge can never grow again: doubling the round
  budget leaves the final state untouched and the coverage tail constant,
  while ``rounds_executed`` still reports the full budget (the engine's
  early exit must be unobservable);
* **batched ≡ per-round completion accounting** — ``batched_completion``
  skips the per-round delta popcounts and recovers the completion round
  from the last news round; every observable field (checkpoint states
  included) must match per-round accounting bit for bit, whether or not
  the gate admits the batched path.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.gossip.builders import random_systolic_schedule
from repro.gossip.engines import HybridEngine, get_engine
from repro.gossip.engines.base import RoundProgram
from repro.gossip.model import Mode, SystolicSchedule
from repro.gossip.simulation import gossip_time, simulate_systolic
from repro.protocols.generic import coloring_systolic_schedule
from repro.topologies.base import Digraph
from repro.topologies.classic import cycle_graph, grid_2d, path_graph

from test_engines_differential import assert_results_identical

ENGINE = "hybrid"


def test_hybrid_registered_and_stamped():
    assert isinstance(get_engine(ENGINE), HybridEngine)
    schedule = coloring_systolic_schedule(cycle_graph(8), Mode.HALF_DUPLEX)
    assert simulate_systolic(schedule, engine=ENGINE).engine_name == ENGINE


@pytest.mark.parametrize("threshold", [-0.01, 1.01, 2.0])
def test_threshold_out_of_range_rejected(threshold):
    with pytest.raises(SimulationError):
        HybridEngine(dense_threshold=threshold)


class TestRelabelingInvariance:
    @pytest.mark.parametrize("seed", range(3))
    def test_permuted_vertex_order_preserves_semantics(self, seed):
        graph = cycle_graph(10)
        schedule = random_systolic_schedule(graph, 4, Mode.HALF_DUPLEX, seed=seed)

        # Same labels and arcs, but a rotated+reflected vertex *order*: every
        # internal index — row, item bit, and the BFS permutation built from
        # them — changes.
        permuted_vertices = sorted(graph.vertices, key=lambda v: ((3 * v + 7) % 10, v))
        permuted_graph = Digraph(permuted_vertices, graph.arcs, name="C10-permuted")
        permuted_schedule = SystolicSchedule(
            permuted_graph, schedule.base_rounds, mode=schedule.mode
        )

        base = simulate_systolic(
            schedule, max_rounds=60, track_history=True, engine=ENGINE
        )
        perm = simulate_systolic(
            permuted_schedule, max_rounds=60, track_history=True, engine=ENGINE
        )

        assert base.completion_round == perm.completion_round
        assert base.rounds_executed == perm.rounds_executed
        assert base.coverage_history == perm.coverage_history
        for vertex in graph.vertices:
            base_labels = {graph.vertex(j) for j in base.known_items(vertex)}
            perm_labels = {permuted_graph.vertex(j) for j in perm.known_items(vertex)}
            assert base_labels == perm_labels, vertex


class TestDensePathEquivalence:
    """``dense_threshold=0.0`` (always dense) is a second oracle for the
    sparse path: both configurations must agree on every observable field,
    under every tracking flag, on schedules that exercise first firings,
    windows, fixed points and irregular rounds."""

    CASES = {
        "cycle": lambda: coloring_systolic_schedule(cycle_graph(9), Mode.HALF_DUPLEX),
        "grid-full-duplex": lambda: coloring_systolic_schedule(
            grid_2d(3, 4), Mode.FULL_DUPLEX
        ),
        "random-sparse": lambda: random_systolic_schedule(
            grid_2d(3, 5), 5, Mode.HALF_DUPLEX, seed=11, activation_probability=0.6
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize(
        "options",
        [
            {"track_history": True},
            {"track_history": False, "track_arrivals": True},
            {"track_item_completion": True, "track_arrivals": True},
        ],
        ids=["history", "arrivals", "items+arrivals"],
    )
    def test_threshold_zero_matches_default(self, case, options):
        schedule = self.CASES[case]()
        program = RoundProgram.from_schedule(schedule, 6 * schedule.graph.n)
        dense = HybridEngine(dense_threshold=0.0).run(program, **options)
        sparse = HybridEngine(dense_threshold=1.0).run(program, **options)
        default = get_engine(ENGINE).run(program, **options)
        assert_results_identical(dense, sparse, (case, "dense-vs-sparse", options))
        assert_results_identical(dense, default, (case, "dense-vs-default", options))

    def test_threshold_zero_matches_on_custom_initial_state(self):
        # High bits above n exercise the word-width widening and the
        # identity tail of the item-bit permutation at once.
        schedule = coloring_systolic_schedule(cycle_graph(6), Mode.HALF_DUPLEX)
        program = RoundProgram.from_schedule(schedule, 12)
        n = schedule.graph.n
        initial = [(1 << i) | (1 << (n + 3 + i)) for i in range(n)]
        options = {"initial": initial, "track_arrivals": True}
        dense = HybridEngine(dense_threshold=0.0).run(program, **options)
        sparse = HybridEngine(dense_threshold=1.0).run(program, **options)
        assert_results_identical(dense, sparse, "custom-initial")


class TestActiveWordsEmptyFixedPoint:
    def _stuck_schedule(self):
        """Forward-only path rounds: knowledge saturates without completing."""
        n = 7
        graph = path_graph(n)
        rounds = [[(i, i + 1)] for i in range(n - 1)]
        return SystolicSchedule(graph, rounds, mode=Mode.DIRECTED, name="P7-forward-only")

    def test_saturated_run_is_a_fixed_point(self):
        schedule = self._stuck_schedule()
        short = simulate_systolic(schedule, max_rounds=120, track_history=True, engine=ENGINE)
        long = simulate_systolic(schedule, max_rounds=240, track_history=True, engine=ENGINE)

        assert not short.complete and not long.complete
        # The early exit must be unobservable: the full budget is reported...
        assert short.rounds_executed == 120
        assert long.rounds_executed == 240
        assert len(short.coverage_history) == 121
        assert len(long.coverage_history) == 241
        # ...knowledge really is a fixed point...
        assert short.knowledge == long.knowledge
        # ...and the coverage tail is constant once no word changes.
        saturated = short.coverage_history[-1]
        assert long.coverage_history[120:] == (saturated,) * 121
        # Vertex 0 never learns anything on a forward-only path.
        assert short.known_items(0) == {0}

    def test_fixed_point_matches_reference(self):
        schedule = self._stuck_schedule()
        program = RoundProgram.from_schedule(schedule, 90)
        ref = get_engine("reference").run(program, track_item_completion=True)
        got = get_engine(ENGINE).run(program, track_item_completion=True)
        assert ref.knowledge == got.knowledge
        assert ref.rounds_executed == got.rounds_executed
        assert ref.coverage_history == got.coverage_history
        assert ref.item_completion_rounds == got.item_completion_rounds

    def test_completion_still_exact_after_thin_windows(self):
        # A completing schedule whose active windows thin out near the end:
        # the hybrid engine must report the same exact completion round.
        schedule = coloring_systolic_schedule(path_graph(17), Mode.HALF_DUPLEX)
        assert gossip_time(schedule, engine=ENGINE) == gossip_time(
            schedule, engine="reference"
        )


class TestBatchedCompletion:
    """``batched_completion=True`` must be metamorphic: on every workload —
    whether or not the gate (cyclic, untracked, covering mask) admits the
    batched path — results are bit-identical to per-round accounting.  The
    quiet-tail argument it relies on (complete ⇒ no further news ⇒
    completion round = last news round) is exactly the kind of shared-blind-
    spot reasoning these oracle-free tests exist to pin down."""

    CASES = {
        "cycle": lambda: coloring_systolic_schedule(cycle_graph(9), Mode.HALF_DUPLEX),
        "grid-full-duplex": lambda: coloring_systolic_schedule(
            grid_2d(3, 4), Mode.FULL_DUPLEX
        ),
        "random-sparse": lambda: random_systolic_schedule(
            grid_2d(3, 5), 5, Mode.HALF_DUPLEX, seed=11, activation_probability=0.6
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("threshold", [0.0, 0.25, 1.0])
    def test_batched_matches_per_round_on_plain_runs(self, case, threshold):
        program = RoundProgram.from_schedule(self.CASES[case]())
        per_round = HybridEngine(dense_threshold=threshold)
        batched = HybridEngine(dense_threshold=threshold, batched_completion=True)
        options = {"track_history": False}
        assert_results_identical(
            per_round.run(program, **options),
            batched.run(program, **options),
            (case, threshold),
        )

    def test_batched_matches_on_never_completing_run(self):
        # Forward-only path rounds: saturation without completion exercises
        # the post-loop completeness check's negative branch.
        n = 7
        graph = path_graph(n)
        rounds = [[(i, i + 1)] for i in range(n - 1)]
        schedule = SystolicSchedule(graph, rounds, mode=Mode.DIRECTED)
        program = RoundProgram.from_schedule(schedule, 90)
        options = {"track_history": False}
        a = HybridEngine().run(program, **options)
        b = HybridEngine(batched_completion=True).run(program, **options)
        assert a.completion_round is None
        assert_results_identical(a, b, "never-completing")

    @pytest.mark.parametrize(
        "options",
        [
            {"track_history": True},
            {"track_history": False, "track_arrivals": True},
            {"track_history": False, "track_item_completion": True},
            {"track_history": False, "target_mask": 0b1011},
        ],
        ids=["history", "arrivals", "items", "subset-mask"],
    )
    def test_gate_closed_workloads_still_identical(self, options):
        # Tracked runs and subset masks close the batched gate; the flag
        # must then be a no-op, not a wrong answer.
        program = RoundProgram.from_schedule(
            coloring_systolic_schedule(cycle_graph(9), Mode.HALF_DUPLEX)
        )
        assert_results_identical(
            HybridEngine().run(program, **options),
            HybridEngine(batched_completion=True).run(program, **options),
            ("gate-closed", options),
        )

    def test_batched_checkpoints_match_per_round(self):
        # Batched mode discovers completion late and must fix its captured
        # states up: states past the completion round are dropped and the
        # completing round's state is stamped, exactly as per-round
        # accounting would have captured them.
        program = RoundProgram.from_schedule(
            coloring_systolic_schedule(cycle_graph(9), Mode.HALF_DUPLEX)
        )
        every = range(program.max_rounds + 1)
        options = {"track_history": False}
        a = HybridEngine().run_checkpointed(program, checkpoint_rounds=every, **options)
        b = HybridEngine(batched_completion=True).run_checkpointed(
            program, checkpoint_rounds=every, **options
        )
        assert_results_identical(a.result, b.result, "batched-checkpointed")
        assert a.result.completion_round is not None
        assert [s.round for s in a.checkpoints] == [s.round for s in b.checkpoints]
        for sa, sb in zip(a.checkpoints, b.checkpoints):
            assert sa.knowledge == sb.knowledge, sa.round
            assert sa.completion_round == sb.completion_round, sa.round
