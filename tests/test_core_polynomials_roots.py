"""Tests for the polynomial / root-solving layer (repro.core.polynomials, .roots)."""

from __future__ import annotations

import math

import pytest

from repro.core.polynomials import (
    GOLDEN_RATIO_INVERSE,
    full_duplex_norm_bound,
    full_duplex_norm_bound_limit,
    geometric_sum,
    half_duplex_norm_bound,
    half_duplex_norm_bound_limit,
    norm_bound_product,
    p_polynomial,
    split_period,
)
from repro.core.roots import bisection_root, solve_unit_root
from repro.exceptions import BoundComputationError


class TestPPolynomial:
    def test_first_values(self):
        lam = 0.5
        assert p_polynomial(1, lam) == pytest.approx(1.0)
        assert p_polynomial(2, lam) == pytest.approx(1.0 + 0.25)
        assert p_polynomial(3, lam) == pytest.approx(1.0 + 0.25 + 0.0625)

    def test_zero_terms_is_zero(self):
        assert p_polynomial(0, 0.7) == 0.0

    def test_lambda_zero(self):
        assert p_polynomial(5, 0.0) == 1.0

    def test_composition_identity(self):
        # p_i + λ^{2i} p_j = p_{i+j}, the identity the Lemma 4.2 proof uses.
        lam = 0.61
        for i in range(0, 5):
            for j in range(0, 5):
                lhs = p_polynomial(i, lam) + lam ** (2 * i) * p_polynomial(j, lam)
                assert lhs == pytest.approx(p_polynomial(i + j, lam))

    def test_negative_index_rejected(self):
        with pytest.raises(BoundComputationError):
            p_polynomial(-1, 0.5)

    def test_lambda_out_of_range_rejected(self):
        with pytest.raises(BoundComputationError):
            p_polynomial(2, 1.0)
        with pytest.raises(BoundComputationError):
            p_polynomial(2, -0.1)

    def test_increasing_in_lambda(self):
        assert p_polynomial(4, 0.3) < p_polynomial(4, 0.6) < p_polynomial(4, 0.9)


class TestGeometricSum:
    def test_basic(self):
        assert geometric_sum(0.5, 1, 3) == pytest.approx(0.5 + 0.25 + 0.125)

    def test_empty_range(self):
        assert geometric_sum(0.5, 3, 2) == 0.0

    def test_lambda_zero(self):
        assert geometric_sum(0.0, 0, 5) == 1.0
        assert geometric_sum(0.0, 1, 5) == 0.0


class TestSplitPeriod:
    @pytest.mark.parametrize("s, expected", [(3, (2, 1)), (4, (2, 2)), (5, (3, 2)), (8, (4, 4))])
    def test_values(self, s, expected):
        assert split_period(s) == expected

    def test_parts_sum_to_period(self):
        for s in range(1, 20):
            left, right = split_period(s)
            assert left + right == s

    def test_invalid(self):
        with pytest.raises(BoundComputationError):
            split_period(0)


class TestNormBounds:
    def test_norm_bound_product_matches_definition(self):
        lam = 0.7
        expected = lam * math.sqrt(p_polynomial(3, lam)) * math.sqrt(p_polynomial(2, lam))
        assert norm_bound_product(3, 2, lam) == pytest.approx(expected)

    def test_half_duplex_uses_balanced_split(self):
        lam = 0.6
        assert half_duplex_norm_bound(5, lam) == pytest.approx(norm_bound_product(3, 2, lam))

    def test_half_duplex_bound_increasing_in_lambda(self):
        values = [half_duplex_norm_bound(4, lam) for lam in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_half_duplex_bound_decreasing_in_period_at_fixed_root(self):
        # At fixed λ the bound grows with s, so the root λ(s) decreases with s.
        lam = 0.6
        assert half_duplex_norm_bound(4, lam) <= half_duplex_norm_bound(6, lam)

    def test_balanced_split_is_worst_case(self):
        # λ √p_⌈s/2⌉ √p_⌊s/2⌋ dominates every other split of s (paper's
        # monotonicity argument p_{i+1} p_{j-1} < p_i p_j for i >= j).
        lam = 0.8
        for s in range(3, 10):
            balanced = half_duplex_norm_bound(s, lam)
            for left in range(1, s):
                right = s - left
                assert norm_bound_product(left, right, lam) <= balanced + 1e-12

    def test_half_duplex_limit_is_pointwise_limit(self):
        lam = 0.55
        assert half_duplex_norm_bound(60, lam) == pytest.approx(
            half_duplex_norm_bound_limit(lam), abs=1e-9
        )

    def test_full_duplex_bound(self):
        lam = 0.5
        assert full_duplex_norm_bound(4, lam) == pytest.approx(0.5 + 0.25 + 0.125)

    def test_full_duplex_limit(self):
        lam = 0.4
        assert full_duplex_norm_bound_limit(lam) == pytest.approx(lam / (1 - lam))
        assert full_duplex_norm_bound(80, lam) == pytest.approx(
            full_duplex_norm_bound_limit(lam), abs=1e-9
        )

    def test_invalid_periods(self):
        with pytest.raises(BoundComputationError):
            half_duplex_norm_bound(0, 0.5)
        with pytest.raises(BoundComputationError):
            full_duplex_norm_bound(1, 0.5)

    def test_negative_totals_rejected(self):
        with pytest.raises(BoundComputationError):
            norm_bound_product(-1, 2, 0.5)

    def test_golden_ratio_inverse_is_limit_root(self):
        assert half_duplex_norm_bound_limit(GOLDEN_RATIO_INVERSE) == pytest.approx(1.0)


class TestRootSolving:
    def test_bisection_simple_root(self):
        root = bisection_root(lambda x: x * x - 2.0, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-9)

    def test_bisection_endpoint_roots(self):
        assert bisection_root(lambda x: x, 0.0, 1.0) == 0.0
        assert bisection_root(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_bisection_bad_bracket(self):
        with pytest.raises(BoundComputationError):
            bisection_root(lambda x: x * x + 1.0, 0.0, 1.0)

    def test_solve_unit_root_golden_ratio(self):
        lam = solve_unit_root(half_duplex_norm_bound_limit)
        assert lam == pytest.approx(GOLDEN_RATIO_INVERSE, abs=1e-10)

    def test_solve_unit_root_s3(self):
        # s = 3: λ √(1 + λ²) = 1  ⇒  λ² = (√5 − 1)/2.
        lam = solve_unit_root(lambda x: half_duplex_norm_bound(3, x))
        assert lam * lam == pytest.approx(GOLDEN_RATIO_INVERSE, abs=1e-9)

    def test_solve_unit_root_full_duplex_s3(self):
        # λ + λ² = 1 has the golden-ratio root.
        lam = solve_unit_root(lambda x: full_duplex_norm_bound(3, x))
        assert lam == pytest.approx(GOLDEN_RATIO_INVERSE, abs=1e-10)

    def test_root_value_maps_back_to_one(self):
        for s in (3, 4, 5, 6, 7, 8):
            lam = solve_unit_root(lambda x, s=s: half_duplex_norm_bound(s, x))
            assert half_duplex_norm_bound(s, lam) == pytest.approx(1.0, abs=1e-9)

    def test_no_root_raises(self):
        with pytest.raises(BoundComputationError):
            solve_unit_root(lambda x: 0.5 * x)  # stays below 1 on (0, 1)
        with pytest.raises(BoundComputationError):
            solve_unit_root(lambda x: 2.0 + x)  # already above 1

    def test_fallback_bisection_agrees_with_brent(self):
        lam_brent = solve_unit_root(lambda x: half_duplex_norm_bound(4, x))
        lam_bisect = bisection_root(
            lambda x: half_duplex_norm_bound(4, x) - 1.0, 1e-12, 1 - 1e-12
        )
        assert lam_brent == pytest.approx(lam_bisect, abs=1e-9)
