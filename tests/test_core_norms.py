"""Tests for the matrix-norm toolkit (repro.core.norms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.norms import (
    block_diagonal_norm,
    euclidean_norm,
    power_iteration_norm,
    semi_eigenvalue_bound,
    spectral_radius,
    verify_semi_eigenvector,
)
from repro.exceptions import BoundComputationError


class TestEuclideanNorm:
    def test_identity(self):
        assert euclidean_norm(np.eye(4)) == pytest.approx(1.0)

    def test_diagonal(self):
        assert euclidean_norm(np.diag([3.0, -5.0, 1.0])) == pytest.approx(5.0)

    def test_rank_one(self):
        u = np.array([[1.0], [2.0]])
        v = np.array([[3.0, 4.0]])
        assert euclidean_norm(u @ v) == pytest.approx(np.sqrt(5.0) * 5.0)

    def test_rectangular(self):
        m = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        assert euclidean_norm(m) == pytest.approx(2.0)

    def test_empty_matrix(self):
        assert euclidean_norm(np.zeros((0, 3))) == 0.0

    def test_non_matrix_rejected(self):
        with pytest.raises(BoundComputationError):
            euclidean_norm(np.zeros(3))

    def test_submultiplicative(self):
        rng = np.random.default_rng(0)
        a = rng.random((4, 4))
        b = rng.random((4, 4))
        assert euclidean_norm(a @ b) <= euclidean_norm(a) * euclidean_norm(b) + 1e-12

    def test_monotone_in_entries(self):
        # Norm property 4: M <= N entrywise (non-negative) implies ||M|| <= ||N||.
        rng = np.random.default_rng(1)
        m = rng.random((5, 5))
        n = m + rng.random((5, 5))
        assert euclidean_norm(m) <= euclidean_norm(n) + 1e-12


class TestSpectralRadius:
    def test_diagonal(self):
        assert spectral_radius(np.diag([0.5, -2.0])) == pytest.approx(2.0)

    def test_nilpotent(self):
        m = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert spectral_radius(m) == pytest.approx(0.0)

    def test_norm_dominates_spectral_radius(self):
        rng = np.random.default_rng(2)
        m = rng.random((6, 6))
        assert spectral_radius(m) <= euclidean_norm(m) + 1e-10

    def test_norm_is_sqrt_of_gram_radius(self):
        rng = np.random.default_rng(3)
        m = rng.random((5, 7))
        assert euclidean_norm(m) == pytest.approx(np.sqrt(spectral_radius(m.T @ m)))

    def test_rectangular_rejected(self):
        with pytest.raises(BoundComputationError):
            spectral_radius(np.zeros((2, 3)))


class TestSemiEigenvectors:
    def test_verify_true_eigenvector(self):
        m = np.array([[2.0, 0.0], [0.0, 1.0]])
        assert verify_semi_eigenvector(m, [1.0, 1.0], 2.0)

    def test_verify_failure(self):
        m = np.array([[2.0, 0.0], [0.0, 1.0]])
        assert not verify_semi_eigenvector(m, [1.0, 1.0], 1.5)

    def test_null_vector_rejected(self):
        with pytest.raises(BoundComputationError):
            verify_semi_eigenvector(np.eye(2), [0.0, 0.0], 1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(BoundComputationError):
            verify_semi_eigenvector(np.eye(2), [1.0, 1.0, 1.0], 1.0)

    def test_lemma21_bound_dominates_spectral_radius(self):
        # For a non-negative matrix and a positive vector, the componentwise
        # ratio max (Mx)_i / x_i upper-bounds ρ(M) — Lemma 2.1.
        rng = np.random.default_rng(4)
        for _ in range(10):
            m = rng.random((5, 5))
            x = rng.random(5) + 0.1
            bound = semi_eigenvalue_bound(m, x)
            assert spectral_radius(m) <= bound + 1e-10

    def test_lemma21_exact_for_positive_eigenvector(self):
        # For a positive matrix, the Perron eigenvector makes Lemma 2.1 tight.
        m = np.array([[2.0, 1.0], [1.0, 2.0]])
        eigenvalues, eigenvectors = np.linalg.eig(m)
        index = int(np.argmax(eigenvalues))
        perron = np.abs(eigenvectors[:, index])
        assert semi_eigenvalue_bound(m, perron) == pytest.approx(3.0, abs=1e-9)

    def test_lemma21_requires_nonnegative_matrix(self):
        with pytest.raises(BoundComputationError):
            semi_eigenvalue_bound(np.array([[-1.0, 0.0], [0.0, 1.0]]), [1.0, 1.0])

    def test_lemma21_requires_positive_vector(self):
        with pytest.raises(BoundComputationError):
            semi_eigenvalue_bound(np.eye(2), [1.0, 0.0])

    def test_lemma21_requires_square(self):
        with pytest.raises(BoundComputationError):
            semi_eigenvalue_bound(np.zeros((2, 3)), [1.0, 1.0, 1.0])


class TestBlockAndPowerIteration:
    def test_block_diagonal_norm_is_max(self):
        blocks = [np.diag([1.0]), np.diag([4.0, 2.0]), np.diag([3.0])]
        assert block_diagonal_norm(blocks) == pytest.approx(4.0)

    def test_block_diagonal_norm_matches_assembled_matrix(self):
        rng = np.random.default_rng(5)
        blocks = [rng.random((3, 2)), rng.random((2, 4)), rng.random((1, 1))]
        rows = sum(b.shape[0] for b in blocks)
        cols = sum(b.shape[1] for b in blocks)
        assembled = np.zeros((rows, cols))
        r = c = 0
        for b in blocks:
            assembled[r : r + b.shape[0], c : c + b.shape[1]] = b
            r += b.shape[0]
            c += b.shape[1]
        assert block_diagonal_norm(blocks) == pytest.approx(euclidean_norm(assembled))

    def test_block_diagonal_norm_empty(self):
        assert block_diagonal_norm([]) == 0.0

    def test_power_iteration_matches_svd(self):
        rng = np.random.default_rng(6)
        m = rng.random((8, 5))
        assert power_iteration_norm(m, iterations=500) == pytest.approx(
            euclidean_norm(m), rel=1e-6
        )

    def test_power_iteration_zero_matrix(self):
        assert power_iteration_norm(np.zeros((3, 3))) == 0.0

    def test_power_iteration_empty(self):
        assert power_iteration_norm(np.zeros((0, 2))) == 0.0
