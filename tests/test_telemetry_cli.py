"""CLI surface of the telemetry layer: --trace, --metrics, stats, logging.

Every test drives :func:`repro.cli.main` in-process, so the suite covers
the real flag plumbing (global ``--trace``/``-v``/``-q``, per-command
``--metrics``, the ``stats`` subcommand and its Chrome export) and the
acceptance contract: a traced ``optimize --incremental`` run emits a
schema-valid JSONL stream whose spans and counters cover engine-resolution
rationale, checkpoint reuse and per-phase wall time — while printing output
bit-identical to the untraced run.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.cli import main
from repro.telemetry import TRACE_ENV_VAR
from repro.telemetry.trace import iter_trace, read_stats

OPTIMIZE_ARGS = [
    "optimize",
    "--family",
    "cycle",
    "--size",
    "8",
    "--iterations",
    "30",
    "--incremental",
    "--engine",
    "frontier",
]


def test_traced_optimize_output_identical_and_trace_valid(tmp_path, capsys):
    assert main(OPTIMIZE_ARGS) == 0
    untraced = capsys.readouterr().out

    trace = tmp_path / "trace.jsonl"
    assert main(["--trace", str(trace), *OPTIMIZE_ARGS]) == 0
    traced = capsys.readouterr().out

    assert traced == untraced, "tracing changed the optimize output"

    events = list(iter_trace(str(trace)))  # every line validates
    assert events[0]["type"] == "meta"
    stats = read_stats(str(trace))

    # Per-phase wall time: the CLI phases nest under the command span.
    spans = {s.name: s for s in stats.spans}
    assert {"cli.command", "cli.synthesize", "cli.certify"} <= set(spans)
    command = spans["cli.command"]
    assert spans["cli.synthesize"].parent_id == command.span_id
    assert spans["cli.certify"].parent_id == command.span_id
    assert command.duration_ns >= spans["cli.synthesize"].duration_ns

    # Engine-resolution rationale.
    resolves = [e for e in stats.events if e.name == "engine.resolve"]
    assert resolves and all(e.attrs["rationale"] for e in resolves)

    # Checkpoint-reuse counters from the incremental evaluator.
    assert stats.counter("search.incremental", "evaluations") > 0
    hits = stats.counter("search.incremental", "checkpoint_hits")
    misses = stats.counter("search.incremental", "checkpoint_misses")
    assert hits + misses > 0

    # Engine run counters flushed once per run.
    assert stats.counter("engine.frontier", "runs") > 0


def test_trace_env_var_is_the_fallback(tmp_path, monkeypatch, capsys):
    trace = tmp_path / "env-trace.jsonl"
    monkeypatch.setenv(TRACE_ENV_VAR, str(trace))
    assert main(OPTIMIZE_ARGS) == 0
    capsys.readouterr()
    assert trace.exists()
    assert list(iter_trace(str(trace)))


def test_metrics_prints_runstats_table(capsys):
    assert main([*OPTIMIZE_ARGS, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "cli.synthesize" in out
    assert "engine.frontier.runs" in out
    assert "engine.resolve:" in out


def test_stats_subcommand_summarises_and_exports(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["--trace", str(trace), *OPTIMIZE_ARGS]) == 0
    capsys.readouterr()

    chrome = tmp_path / "trace.chrome.json"
    assert main(["stats", str(trace), "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "cli.command" in out
    assert "search.incremental.checkpoint_hits" in out

    converted = json.loads(chrome.read_text())
    assert converted["traceEvents"], "Chrome export is empty"
    assert {e["ph"] for e in converted["traceEvents"]} <= {"X", "i"}


def test_stats_subcommand_rejects_bad_traces(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "missing.jsonl")]) == 1
    assert "cannot read trace" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "mystery"}\n')
    assert main(["stats", str(bad)]) == 1
    assert "invalid trace" in capsys.readouterr().err


@pytest.mark.parametrize(
    ("flags", "expected_level"),
    [([], logging.WARNING), (["-v"], logging.INFO), (["-vv"], logging.DEBUG), (["-q"], logging.ERROR)],
)
def test_verbosity_flags_set_root_level(flags, expected_level, capsys, monkeypatch):
    root = logging.getLogger()
    monkeypatch.setattr(root, "handlers", [])
    old_level = root.level
    try:
        assert main([*flags, "fig4"]) == 0
    finally:
        capsys.readouterr()
        level = root.level
        root.setLevel(old_level)
    assert level == expected_level
