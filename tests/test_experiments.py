"""Tests for the experiment harness (repro.experiments.*) and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.fig4 import fig4_table
from repro.experiments.fig5 import fig5_table
from repro.experiments.fig6 import fig6_table
from repro.experiments.fig8 import fig8_table
from repro.experiments.reference import (
    FIG4_GENERAL_COEFFICIENTS,
    TEXT_QUOTED_HALF_DUPLEX_NONSYSTOLIC,
    TEXT_QUOTED_HALF_DUPLEX_SYSTOLIC,
)
from repro.experiments.runner import format_table, format_value, run_all
from repro.experiments.sandwich import default_instances, sandwich_row, sandwich_table
from repro.experiments.structure import render_matrix, structure_report
from repro.gossip.model import Mode
from repro.protocols.cycle import cycle_systolic_schedule


class TestFig4:
    def test_all_periods_present(self):
        rows = fig4_table()
        assert [r.period for r in rows] == [3, 4, 5, 6, 7, 8, None]

    def test_matches_paper_within_print_precision(self):
        for row in fig4_table():
            assert row.paper_coefficient is not None
            assert row.deviation is not None
            assert row.deviation <= 1e-4

    def test_period_label(self):
        rows = fig4_table((3, None))
        assert rows[0].period_label == "3"
        assert rows[1].period_label == "∞"

    def test_custom_periods(self):
        rows = fig4_table((10, 12))
        assert len(rows) == 2
        assert all(r.paper_coefficient is None for r in rows)
        assert all(r.deviation is None for r in rows)


class TestFig5:
    def test_row_count(self):
        rows = fig5_table()
        assert len(rows) == 5 * 2 * 6

    def test_quoted_cells_match(self):
        rows = fig5_table()
        for row in rows:
            quoted = TEXT_QUOTED_HALF_DUPLEX_SYSTOLIC.get(row.family, {}).get(
                (row.degree, row.period)
            )
            if quoted is not None:
                assert row.coefficient == pytest.approx(quoted, abs=1e-4)

    def test_refined_never_below_general(self):
        for row in fig5_table():
            assert row.coefficient >= row.general_coefficient - 1e-6

    def test_de_bruijn_small_period_cell_coincides_with_general(self):
        # The DB(2,D), s = 4 cell equals the Fig. 4 value (a * entry): the
        # quoted 1.8133 coincides with the general bound.
        row = fig5_table(families=("DB",), degrees=(2,), periods=(4,))[0]
        assert not row.improves_on_general

    def test_de_bruijn_large_period_cell_improves(self):
        # For larger periods the separator refinement does beat the general
        # bound on de Bruijn networks (consistent with the non-systolic
        # 1.5876 > 1.4404 of Fig. 6).
        row = fig5_table(families=("DB",), degrees=(2,), periods=(8,))[0]
        assert row.improves_on_general

    def test_butterfly_cells_improve_for_period_four_and_up(self):
        for row in fig5_table(families=("BF",), degrees=(2,), periods=(4, 5, 6, 7, 8)):
            assert row.improves_on_general

    def test_deviation_none_without_reference(self):
        row = fig5_table(families=("BF",), degrees=(3,), periods=(5,))[0]
        assert row.deviation is None


class TestFig6:
    def test_row_count_and_reference(self):
        rows = fig6_table()
        assert len(rows) == 10
        for row in rows:
            quoted = TEXT_QUOTED_HALF_DUPLEX_NONSYSTOLIC.get(row.family, {}).get(row.degree)
            if quoted is not None:
                assert row.coefficient == pytest.approx(quoted, abs=1e-4)

    def test_general_column_is_golden(self):
        for row in fig6_table():
            assert row.general_coefficient == pytest.approx(1.4404, abs=1e-4)

    def test_diameter_column_positive(self):
        for row in fig6_table():
            assert row.diameter_coefficient > 0

    def test_nonsystolic_below_systolic(self):
        nonsys = {(r.family, r.degree): r.coefficient for r in fig6_table()}
        for row in fig5_table(periods=(8,)):
            assert nonsys[(row.family, row.degree)] <= row.coefficient + 1e-9


class TestFig8:
    def test_row_count(self):
        rows = fig8_table()
        assert len(rows) == 3 * 2 * 7

    def test_refined_at_least_general(self):
        for row in fig8_table():
            assert row.coefficient >= row.general_coefficient - 1e-6

    def test_full_duplex_below_half_duplex(self):
        half = {(r.family, r.degree, r.period): r.coefficient for r in fig5_table()}
        for row in fig8_table(periods=(4, 6)):
            key = (row.family, row.degree, row.period)
            if key in half:
                assert row.coefficient <= half[key] + 1e-9

    def test_period_label(self):
        rows = fig8_table(families=("WBF",), degrees=(2,), periods=(None,))
        assert rows[0].period_label == "∞"


class TestStructure:
    def test_report_checks_hold(self):
        report = structure_report()
        assert report.lemma42["right_holds"] and report.lemma42["left_holds"]
        assert report.lemma43["worst_split_holds"]
        assert report.lemma43["reduction_consistent"]
        assert report.lemma61["holds"]

    def test_matrix_shapes(self):
        report = structure_report(blocks=4)
        assert report.nx.shape == (4, 4)
        assert report.ox.shape == (4, 4)
        assert report.full_duplex_matrix.shape == (10, 10)

    def test_render_matrix(self):
        report = structure_report(blocks=2)
        text = render_matrix(report.nx)
        assert "\n" in text
        assert "." in text  # zeros rendered as dots


class TestSandwich:
    def test_single_row_consistency(self):
        row = sandwich_row(cycle_systolic_schedule(8, Mode.HALF_DUPLEX))
        assert row.consistent
        assert row.certified_lower_bound <= row.measured_gossip_time
        assert row.gap_ratio >= 1.0

    def test_row_records_resolved_engine(self):
        from repro.gossip.engines import available_engines

        row = sandwich_row(cycle_systolic_schedule(8, Mode.HALF_DUPLEX))
        assert row.engine in available_engines()

    def test_row_honours_explicit_engine(self):
        row = sandwich_row(
            cycle_systolic_schedule(8, Mode.HALF_DUPLEX), engine="reference"
        )
        assert row.engine == "reference"

    def test_default_instances_nonempty(self):
        instances = default_instances()
        assert len(instances) >= 10

    def test_small_battery_consistent(self):
        from repro.protocols.hypercube import hypercube_dimension_exchange
        from repro.protocols.path import path_systolic_schedule

        rows = sandwich_table(
            [
                hypercube_dimension_exchange(3, Mode.FULL_DUPLEX),
                path_systolic_schedule(6, Mode.HALF_DUPLEX),
                cycle_systolic_schedule(6, Mode.HALF_DUPLEX),
            ]
        )
        assert all(row.consistent for row in rows)
        assert all(row.norm_at_lambda <= 1.0 + 1e-6 for row in rows)


class TestRunnerAndCli:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.23456) == "1.2346"
        assert format_value("x") == "x"

    def test_format_table_dataclasses(self):
        text = format_table(fig4_table((3, 4)), ["period_label", "coefficient"])
        assert "period_label" in text
        assert "2.8808" in text

    def test_format_table_mappings(self):
        text = format_table([{"a": 1, "b": None}])
        assert "a" in text and "-" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_rejects_unknown_rows(self):
        with pytest.raises(TypeError):
            format_table([object()])

    def test_run_all_without_sandwich(self):
        report = run_all(include_sandwich=False)
        assert "FIG4" in report
        assert "FIG5" in report
        assert "FIG6" in report
        assert "FIG8" in report
        assert "2.8808" in report

    @pytest.mark.parametrize("command", ["fig4", "fig5", "fig6", "fig8", "structure", "broadcast"])
    def test_cli_commands(self, command, capsys):
        assert main([command]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip()

    def test_cli_broadcast_engine_flag(self, capsys):
        assert main(["broadcast", "--engine", "reference"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out
        assert "vectorized" not in out

    def test_cli_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["broadcast", "--engine", "warp-drive"])

    def test_cli_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBroadcastSweep:
    def test_rows_cover_every_family_and_mode(self):
        from repro.experiments.broadcast_sweep import broadcast_sweep_table, sweep_instances

        rows = broadcast_sweep_table()
        assert len(rows) == 2 * len(sweep_instances())
        assert {row.mode for row in rows} == {"half-duplex", "full-duplex"}

    def test_max_broadcast_equals_gossip_time(self):
        from repro.experiments.broadcast_sweep import broadcast_sweep_table

        for row in broadcast_sweep_table():
            assert row.max_matches_gossip, row
            assert row.broadcast_min <= row.broadcast_mean <= row.broadcast_max

    def test_engines_produce_identical_tables(self):
        from dataclasses import replace

        from repro.experiments.broadcast_sweep import broadcast_sweep_table

        ref = broadcast_sweep_table(engine="reference")
        vec = broadcast_sweep_table(engine="vectorized")
        assert [replace(r, engine="x") for r in ref] == [replace(r, engine="x") for r in vec]
