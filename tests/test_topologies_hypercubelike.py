"""Tests for the Butterfly, de Bruijn and Kautz generators (Section 3 networks)."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topologies.butterfly import (
    butterfly,
    wrapped_butterfly,
    wrapped_butterfly_digraph,
)
from repro.topologies.debruijn import de_bruijn, de_bruijn_digraph
from repro.topologies.kautz import kautz, kautz_digraph
from repro.topologies.properties import (
    diameter,
    is_strongly_connected,
    is_symmetric,
)


class TestButterfly:
    def test_vertex_count(self):
        g = butterfly(2, 3)
        assert g.n == (3 + 1) * 2**3

    def test_is_symmetric_by_construction(self):
        assert is_symmetric(butterfly(2, 2))

    def test_level_zero_has_no_downward_arcs(self):
        g = butterfly(2, 2)
        assert g.out_degree(("00", 0)) == 2  # only the upward opposites
        # level-0 vertices connect only to level-1 vertices
        assert all(level == 1 for (_x, level) in g.out_neighbors(("00", 0)))

    def test_internal_level_degree(self):
        g = butterfly(2, 3)
        # an internal-level vertex has d arcs down and d arcs up (as targets of opposites)
        assert g.out_degree(("000", 1)) == 4

    def test_arc_replaces_correct_position(self):
        g = butterfly(2, 3)
        # from level 3, position 2 (x_2, leftmost char) is replaced
        assert g.has_arc(("000", 3), ("100", 2))
        assert g.has_arc(("000", 3), ("000", 2))
        assert not g.has_arc(("000", 3), ("010", 2))

    def test_connected(self):
        assert is_strongly_connected(butterfly(2, 2))

    def test_diameter_is_two_dim(self):
        assert diameter(butterfly(2, 2)) == 4

    def test_degree_three(self):
        g = butterfly(3, 2)
        assert g.n == 3 * 9

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            butterfly(1, 3)
        with pytest.raises(TopologyError):
            butterfly(2, 0)
        with pytest.raises(TopologyError):
            butterfly(11, 2)


class TestWrappedButterfly:
    def test_digraph_vertex_count(self):
        g = wrapped_butterfly_digraph(2, 3)
        assert g.n == 3 * 2**3

    def test_digraph_out_degree_is_d(self):
        g = wrapped_butterfly_digraph(2, 3)
        assert all(g.out_degree(v) == 2 for v in g.vertices)

    def test_digraph_in_degree_is_d(self):
        g = wrapped_butterfly_digraph(3, 2)
        assert all(g.in_degree(v) == 3 for v in g.vertices)

    def test_digraph_not_symmetric(self):
        assert not is_symmetric(wrapped_butterfly_digraph(2, 3))

    def test_wrap_around_arc(self):
        g = wrapped_butterfly_digraph(2, 3)
        # level 0 wraps to level D-1 replacing position D-1
        assert g.has_arc(("000", 0), ("100", 2))
        assert g.has_arc(("000", 0), ("000", 2))

    def test_level_arc(self):
        g = wrapped_butterfly_digraph(2, 3)
        # level 2 points to level 1 replacing position 1
        assert g.has_arc(("000", 2), ("010", 1))

    def test_digraph_strongly_connected(self):
        assert is_strongly_connected(wrapped_butterfly_digraph(2, 3))

    def test_undirected_is_symmetric(self):
        assert is_symmetric(wrapped_butterfly(2, 3))

    def test_undirected_same_vertices(self):
        directed = wrapped_butterfly_digraph(2, 3)
        undirected = wrapped_butterfly(2, 3)
        assert set(directed.vertices) == set(undirected.vertices)

    def test_dimension_one_rejected(self):
        with pytest.raises(TopologyError):
            wrapped_butterfly_digraph(2, 1)


class TestDeBruijn:
    def test_vertex_count(self):
        assert de_bruijn_digraph(2, 4).n == 16
        assert de_bruijn_digraph(3, 3).n == 27

    def test_arc_count_excludes_self_loops(self):
        g = de_bruijn_digraph(2, 3)
        assert g.m == 2 * 8 - 2  # d^(D+1) - d

    def test_shift_arcs(self):
        g = de_bruijn_digraph(2, 3)
        assert g.has_arc("011", "110")
        assert g.has_arc("011", "111")
        assert not g.has_arc("011", "001")

    def test_no_self_loops_at_constant_strings(self):
        g = de_bruijn_digraph(2, 3)
        assert not g.has_arc("000", "000")
        assert g.out_degree("000") == 1  # only 001 remains

    def test_strongly_connected(self):
        assert is_strongly_connected(de_bruijn_digraph(2, 4))

    def test_digraph_diameter_is_dimension(self):
        assert diameter(de_bruijn_digraph(2, 3)) == 3

    def test_undirected_symmetric(self):
        assert is_symmetric(de_bruijn(2, 3))

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            de_bruijn_digraph(1, 3)
        with pytest.raises(TopologyError):
            de_bruijn_digraph(2, 0)


class TestKautz:
    def test_vertex_count(self):
        assert kautz_digraph(2, 3).n == 3 * 2**2
        assert kautz_digraph(3, 2).n == 4 * 3

    def test_no_adjacent_equal_symbols(self):
        g = kautz_digraph(2, 3)
        for v in g.vertices:
            assert all(v[i] != v[i + 1] for i in range(len(v) - 1))

    def test_out_degree_is_d(self):
        g = kautz_digraph(2, 3)
        assert all(g.out_degree(v) == 2 for v in g.vertices)

    def test_in_degree_is_d(self):
        g = kautz_digraph(2, 3)
        assert all(g.in_degree(v) == 2 for v in g.vertices)

    def test_no_self_loops_possible(self):
        g = kautz_digraph(2, 2)
        assert all(not g.has_arc(v, v) for v in g.vertices)

    def test_shift_arcs(self):
        g = kautz_digraph(2, 3)
        assert g.has_arc("010", "101")
        assert g.has_arc("010", "102")
        assert not g.has_arc("010", "100")

    def test_strongly_connected(self):
        assert is_strongly_connected(kautz_digraph(2, 3))

    def test_diameter_is_dimension(self):
        assert diameter(kautz_digraph(2, 3)) == 3

    def test_undirected_symmetric(self):
        assert is_symmetric(kautz(2, 3))

    def test_dimension_one_is_complete_digraph(self):
        g = kautz_digraph(2, 1)
        assert g.n == 3
        assert g.m == 6

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            kautz_digraph(1, 3)
        with pytest.raises(TopologyError):
            kautz_digraph(2, 0)
        with pytest.raises(TopologyError):
            kautz_digraph(10, 2)
