"""Tests for protocol builders and analysis helpers (repro.gossip.builders / .analysis)."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError, SimulationError
from repro.gossip.analysis import (
    BOTH,
    IDLE,
    LEFT,
    RIGHT,
    activation_counts,
    all_arrival_times,
    arrival_times,
    eccentricities,
    local_activation_sequence,
    protocol_summary,
)
from repro.gossip.builders import (
    edge_coloring_rounds,
    edge_coloring_schedule,
    full_duplex_rounds_from_coloring,
    greedy_edge_coloring,
    half_duplex_rounds_from_coloring,
    random_systolic_schedule,
)
from repro.gossip.engines import available_engines
from repro.gossip.model import GossipProtocol, Mode
from repro.gossip.simulation import broadcast_times_all, gossip_time, simulate_systolic
from repro.gossip.validation import validate_protocol
from repro.protocols.cycle import cycle_systolic_schedule
from repro.protocols.hypercube import hypercube_dimension_exchange
from repro.protocols.path import path_systolic_schedule
from repro.topologies.classic import cycle_graph, path_graph, star_graph
from repro.topologies.debruijn import de_bruijn, de_bruijn_digraph


class TestGreedyEdgeColoring:
    def test_coloring_is_proper(self):
        g = de_bruijn(2, 3)
        coloring = greedy_edge_coloring(g)
        for edge_a, color_a in coloring.items():
            for edge_b, color_b in coloring.items():
                if edge_a != edge_b and edge_a & edge_b:
                    assert color_a != color_b

    def test_every_edge_colored(self):
        g = cycle_graph(6)
        coloring = greedy_edge_coloring(g)
        assert len(coloring) == len(g.undirected_edges())

    def test_path_uses_two_colors(self):
        coloring = greedy_edge_coloring(path_graph(6))
        assert max(coloring.values()) + 1 == 2

    def test_star_uses_degree_colors(self):
        coloring = greedy_edge_coloring(star_graph(5))
        assert max(coloring.values()) + 1 == 4

    def test_directed_graph_rejected(self):
        with pytest.raises(ProtocolError):
            greedy_edge_coloring(de_bruijn_digraph(2, 3))


class TestColoringRounds:
    def test_half_duplex_rounds_are_valid(self):
        g = de_bruijn(2, 3)
        coloring = greedy_edge_coloring(g)
        rounds = half_duplex_rounds_from_coloring(g, coloring)
        protocol = GossipProtocol(g, rounds, mode=Mode.HALF_DUPLEX)
        validate_protocol(protocol)

    def test_half_duplex_round_count(self):
        g = cycle_graph(6)
        coloring = greedy_edge_coloring(g)
        rounds = half_duplex_rounds_from_coloring(g, coloring)
        assert len(rounds) == 2 * (max(coloring.values()) + 1)

    def test_full_duplex_rounds_are_valid(self):
        g = de_bruijn(2, 3)
        coloring = greedy_edge_coloring(g)
        rounds = full_duplex_rounds_from_coloring(g, coloring)
        protocol = GossipProtocol(g, rounds, mode=Mode.FULL_DUPLEX)
        validate_protocol(protocol)

    def test_all_arcs_covered_by_half_duplex_rounds(self):
        g = cycle_graph(5)
        rounds = edge_coloring_rounds(g, Mode.HALF_DUPLEX)
        activated = {arc for rnd in rounds for arc in rnd}
        assert activated == set(g.arcs)

    def test_directed_mode_rejected(self):
        with pytest.raises(ProtocolError):
            edge_coloring_rounds(cycle_graph(4), Mode.DIRECTED)

    def test_schedule_completes_gossip(self):
        schedule = edge_coloring_schedule(de_bruijn(2, 3), Mode.HALF_DUPLEX)
        assert gossip_time(schedule) > 0


class TestRandomSystolicSchedule:
    def test_rounds_are_valid_half_duplex(self):
        g = de_bruijn(2, 3)
        schedule = random_systolic_schedule(g, 5, Mode.HALF_DUPLEX, seed=3)
        protocol = schedule.unroll(5)
        validate_protocol(protocol)

    def test_rounds_are_valid_full_duplex(self):
        g = cycle_graph(8)
        schedule = random_systolic_schedule(g, 4, Mode.FULL_DUPLEX, seed=1)
        validate_protocol(schedule.unroll(4))

    def test_deterministic_for_fixed_seed(self):
        g = cycle_graph(8)
        a = random_systolic_schedule(g, 4, seed=7)
        b = random_systolic_schedule(g, 4, seed=7)
        assert a.base_rounds == b.base_rounds

    def test_different_seeds_generally_differ(self):
        g = de_bruijn(2, 4)
        a = random_systolic_schedule(g, 6, seed=1)
        b = random_systolic_schedule(g, 6, seed=2)
        assert a.base_rounds != b.base_rounds

    def test_invalid_period(self):
        with pytest.raises(ProtocolError):
            random_systolic_schedule(cycle_graph(4), 0)

    def test_invalid_probability(self):
        with pytest.raises(ProtocolError):
            random_systolic_schedule(cycle_graph(4), 3, activation_probability=0.0)

    def test_directed_graph_rejected_for_half_duplex(self):
        with pytest.raises(ProtocolError):
            random_systolic_schedule(de_bruijn_digraph(2, 3), 3, Mode.HALF_DUPLEX)

    def test_directed_mode_on_digraph(self):
        schedule = random_systolic_schedule(
            de_bruijn_digraph(2, 3), 4, Mode.DIRECTED, seed=5
        )
        validate_protocol(schedule.unroll(4))


class TestLocalActivationSequence:
    def test_path_schedule_sequence_symbols(self):
        schedule = path_systolic_schedule(4, Mode.HALF_DUPLEX)
        word = local_activation_sequence(schedule, 0)
        assert len(word) == schedule.period
        assert set(word) <= {LEFT, RIGHT, IDLE}

    def test_full_duplex_marks_both(self):
        schedule = hypercube_dimension_exchange(2, Mode.FULL_DUPLEX)
        word = local_activation_sequence(schedule, "00")
        assert set(word) == {BOTH}

    def test_endpoint_alternates_on_path(self):
        schedule = path_systolic_schedule(2, Mode.HALF_DUPLEX)
        # P_2 half-duplex: round 1 sends 0 -> 1, round 2 sends 1 -> 0.
        assert local_activation_sequence(schedule, 0) == RIGHT + LEFT
        assert local_activation_sequence(schedule, 1) == LEFT + RIGHT

    def test_explicit_protocol_and_custom_length(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(2, 1)]])
        assert local_activation_sequence(protocol, 1) == LEFT + RIGHT + LEFT
        assert local_activation_sequence(protocol, 1, length=2) == LEFT + RIGHT

    def test_unknown_vertex_raises(self):
        schedule = path_systolic_schedule(3, Mode.HALF_DUPLEX)
        with pytest.raises(SimulationError):
            local_activation_sequence(schedule, 99)

    def test_wrong_type_raises(self):
        with pytest.raises(SimulationError):
            local_activation_sequence([], 0)


class TestActivationAnalysis:
    def test_activation_counts(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(0, 1)]])
        counts = activation_counts(protocol)
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1

    def test_arrival_times_on_path(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)], [(1, 2)], [(2, 3)]])
        times = arrival_times(protocol, 0)
        assert times == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_arrival_times_incomplete_broadcast(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)]])
        times = arrival_times(protocol, 0)
        assert 3 not in times

    def test_arrival_times_unknown_source(self):
        g = path_graph(3)
        protocol = GossipProtocol(g, [[(0, 1)]])
        with pytest.raises(SimulationError):
            arrival_times(protocol, 99)

    def test_protocol_summary_fields(self):
        schedule = path_systolic_schedule(5, Mode.HALF_DUPLEX)
        protocol = schedule.unroll(8)
        summary = protocol_summary(protocol)
        assert summary["n"] == 5
        assert summary["length"] == 8
        assert summary["minimal_period"] == 4
        assert summary["total_activations"] > 0
        assert summary["mode"] == "half-duplex"

    def test_protocol_summary_empty_protocol(self):
        g = path_graph(3)
        summary = protocol_summary(GossipProtocol(g, []))
        assert summary["length"] == 0
        assert summary["mean_activations_per_round"] == 0.0
        assert summary["gossip_rounds"] is None
        assert summary["broadcast_times"] == {0: None, 1: None, 2: None}


class TestBatchedArrivalAnalyses:
    """The single-pass arrival/eccentricity helpers and their engine kwarg."""

    def _schedule(self):
        return cycle_systolic_schedule(8, Mode.HALF_DUPLEX)

    def test_protocol_summary_c8_regression(self):
        """Pinned output of the batched summary on the C(8) cycle protocol."""
        schedule = self._schedule()
        protocol = schedule.unroll(8)
        summary = protocol_summary(protocol)
        assert summary == {
            "name": "C(8)-systolic-half-duplex[t=8]",
            "graph": "C(8)",
            "n": 8,
            "mode": "half-duplex",
            "length": 8,
            "minimal_period": 4,
            "distinct_arcs_used": 16,
            "total_activations": 32,
            "mean_activations_per_round": 4.0,
            "idle_vertex_rounds": 0,
            "gossip_rounds": 8,
            "broadcast_times": {v: 8 for v in range(8)},
        }

    def test_summary_broadcast_times_match_batched_helper(self):
        schedule = self._schedule()
        protocol = schedule.unroll(gossip_time(schedule))
        summary = protocol_summary(protocol)
        assert summary["broadcast_times"] == broadcast_times_all(protocol)
        assert summary["gossip_rounds"] == gossip_time(protocol)

    def test_truncated_protocol_reports_unfinished_sources_as_none(self):
        schedule = self._schedule()
        protocol = schedule.unroll(3)  # too short to broadcast anything
        summary = protocol_summary(protocol)
        assert summary["gossip_rounds"] is None
        assert all(t is None for t in summary["broadcast_times"].values())

    def test_eccentricities_match_broadcast_times_all(self):
        schedule = self._schedule()
        for engine in available_engines():
            assert eccentricities(schedule, engine=engine) == broadcast_times_all(schedule)

    def test_eccentricities_tolerate_incomplete_protocols(self):
        g = path_graph(4)
        forward_only = GossipProtocol(
            g, [[(0, 1)], [(1, 2)], [(2, 3)]], mode=Mode.DIRECTED
        )
        ecc = eccentricities(forward_only)
        assert ecc == {0: 3, 1: None, 2: None, 3: None}
        with pytest.raises(SimulationError):
            broadcast_times_all(forward_only)

    def test_all_arrival_times_matches_per_source_sweeps(self):
        schedule = self._schedule()
        protocol = schedule.unroll(2 * gossip_time(schedule))
        for engine in available_engines():
            batched = all_arrival_times(protocol, engine=engine)
            for source in protocol.graph.vertices:
                assert batched[source] == arrival_times(protocol, source), (engine, source)

    def test_arrival_times_accepts_systolic_schedules_and_engines(self):
        schedule = self._schedule()
        results = {
            engine: arrival_times(schedule, 0, engine=engine)
            for engine in available_engines()
        }
        first = next(iter(results.values()))
        assert all(r == first for r in results.values())
        assert first[0] == 0
        assert set(first) == set(schedule.graph.vertices)
        assert max(first.values()) == 8  # C(8) broadcast time from any source

    def test_all_arrival_times_omits_unreached_vertices(self):
        g = path_graph(4)
        protocol = GossipProtocol(g, [[(0, 1)]], mode=Mode.DIRECTED)
        batched = all_arrival_times(protocol)
        assert batched[0] == {0: 0, 1: 1}
        assert batched[3] == {3: 0}
