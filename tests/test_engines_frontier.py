"""Metamorphic properties of the frontier-propagation engine.

The differential and fuzz suites pin the frontier engine to the reference
oracle; these tests check *semantic* invariants that hold independently of
any oracle, so they would still catch a bug shared by both implementations:

* **relabeling invariance** — permuting vertex labels (and hence the
  engine's internal indices) permutes the result but changes nothing
  observable: completion, executed rounds, the coverage curve, and each
  vertex's known-item *label* set are preserved;
* **monotonicity** — activating additional arcs can only help: coverage
  dominates pointwise, completion never gets later, and every vertex's
  final knowledge is a superset;
* **frontier-empty ⇒ fixed point** — once a full period passes without any
  newly learned pair, knowledge can never grow again: doubling the round
  budget leaves the final state untouched and the coverage tail constant,
  while ``rounds_executed`` still reports the full budget (the engine's
  early exit must be unobservable).
"""

from __future__ import annotations

import pytest

from repro.gossip.builders import random_systolic_schedule
from repro.gossip.engines import FrontierEngine, get_engine
from repro.gossip.engines.base import RoundProgram
from repro.gossip.model import Mode, SystolicSchedule
from repro.gossip.simulation import gossip_time, simulate_systolic
from repro.protocols.generic import coloring_systolic_schedule
from repro.topologies.base import Digraph
from repro.topologies.classic import cycle_graph, grid_2d, path_graph


ENGINE = "frontier"


def test_frontier_registered_and_stamped():
    assert isinstance(get_engine(ENGINE), FrontierEngine)
    schedule = coloring_systolic_schedule(cycle_graph(8), Mode.HALF_DUPLEX)
    assert simulate_systolic(schedule, engine=ENGINE).engine_name == ENGINE


class TestRelabelingInvariance:
    @pytest.mark.parametrize("seed", range(3))
    def test_permuted_vertex_order_preserves_semantics(self, seed):
        graph = cycle_graph(10)
        schedule = random_systolic_schedule(graph, 4, Mode.HALF_DUPLEX, seed=seed)

        # Same labels and arcs, but a rotated+reflected vertex *order*: every
        # internal index (and therefore item bit position) changes.
        permuted_vertices = sorted(graph.vertices, key=lambda v: ((3 * v + 7) % 10, v))
        permuted_graph = Digraph(permuted_vertices, graph.arcs, name="C10-permuted")
        permuted_schedule = SystolicSchedule(
            permuted_graph, schedule.base_rounds, mode=schedule.mode
        )

        base = simulate_systolic(
            schedule, max_rounds=60, track_history=True, engine=ENGINE
        )
        perm = simulate_systolic(
            permuted_schedule, max_rounds=60, track_history=True, engine=ENGINE
        )

        assert base.completion_round == perm.completion_round
        assert base.rounds_executed == perm.rounds_executed
        assert base.coverage_history == perm.coverage_history
        for vertex in graph.vertices:
            base_labels = {graph.vertex(j) for j in base.known_items(vertex)}
            perm_labels = {permuted_graph.vertex(j) for j in perm.known_items(vertex)}
            assert base_labels == perm_labels, vertex


class TestMonotonicityUnderAddedArcs:
    @pytest.mark.parametrize("seed", range(4))
    def test_extra_arcs_never_hurt(self, seed):
        graph = grid_2d(3, 4)
        sparse = random_systolic_schedule(
            graph, 4, Mode.HALF_DUPLEX, seed=seed, activation_probability=0.5
        )
        # Superset schedule: every round additionally activates all arcs of a
        # proper colouring round (still valid arcs of the same graph).
        extra = coloring_systolic_schedule(graph, Mode.HALF_DUPLEX).base_rounds
        richer_rounds = [
            tuple(dict.fromkeys(tuple(r) + extra[i % len(extra)]))
            for i, r in enumerate(sparse.base_rounds)
        ]
        richer = SystolicSchedule(graph, richer_rounds, mode=Mode.DIRECTED)

        budget = 48
        base = simulate_systolic(sparse, max_rounds=budget, track_history=True, engine=ENGINE)
        more = simulate_systolic(richer, max_rounds=budget, track_history=True, engine=ENGINE)

        for known_base, known_more in zip(
            base.coverage_history, more.coverage_history
        ):
            assert known_more >= known_base
        if base.completion_round is not None:
            assert more.completion_round is not None
            assert more.completion_round <= base.completion_round
        if base.rounds_executed == more.rounds_executed:
            for bits_base, bits_more in zip(base.knowledge, more.knowledge):
                assert bits_base | bits_more == bits_more
        else:
            # The richer run stopped earlier — only possible by completing.
            assert more.complete


class TestFrontierEmptyFixedPoint:
    def _stuck_schedule(self):
        """Forward-only path rounds: knowledge saturates without completing."""
        n = 7
        graph = path_graph(n)
        rounds = [[(i, i + 1)] for i in range(n - 1)]
        return SystolicSchedule(graph, rounds, mode=Mode.DIRECTED, name="P7-forward-only")

    def test_saturated_run_is_a_fixed_point(self):
        schedule = self._stuck_schedule()
        short = simulate_systolic(schedule, max_rounds=120, track_history=True, engine=ENGINE)
        long = simulate_systolic(schedule, max_rounds=240, track_history=True, engine=ENGINE)

        assert not short.complete and not long.complete
        # The early exit must be unobservable: the full budget is reported...
        assert short.rounds_executed == 120
        assert long.rounds_executed == 240
        assert len(short.coverage_history) == 121
        assert len(long.coverage_history) == 241
        # ...knowledge really is a fixed point...
        assert short.knowledge == long.knowledge
        # ...and the coverage tail is constant once the frontier empties.
        saturated = short.coverage_history[-1]
        assert long.coverage_history[120:] == (saturated,) * 121
        # Vertex 0 never learns anything on a forward-only path.
        assert short.known_items(0) == {0}

    def test_fixed_point_matches_reference(self):
        schedule = self._stuck_schedule()
        program = RoundProgram.from_schedule(schedule, 90)
        ref = get_engine("reference").run(program, track_item_completion=True)
        got = get_engine(ENGINE).run(program, track_item_completion=True)
        assert ref.knowledge == got.knowledge
        assert ref.rounds_executed == got.rounds_executed
        assert ref.coverage_history == got.coverage_history
        assert ref.item_completion_rounds == got.item_completion_rounds

    def test_completion_still_exact_after_thin_frontiers(self):
        # A completing schedule whose frontiers thin out near the end: the
        # frontier engine must report the same exact completion round.
        schedule = coloring_systolic_schedule(path_graph(17), Mode.HALF_DUPLEX)
        assert gossip_time(schedule, engine=ENGINE) == gossip_time(
            schedule, engine="reference"
        )


class TestPresplitWindows:
    """The pre-split pending path must be bit-identical to the ring rescan."""

    def _schedules(self):
        yield coloring_systolic_schedule(cycle_graph(16), Mode.HALF_DUPLEX)
        yield coloring_systolic_schedule(grid_2d(4, 5), Mode.HALF_DUPLEX)
        yield coloring_systolic_schedule(grid_2d(3, 4), Mode.FULL_DUPLEX)
        for seed in range(3):
            yield random_systolic_schedule(
                grid_2d(3, 4), 5, Mode.DIRECTED, seed=seed, activation_probability=0.5
            )

    def test_registered_engine_presplits(self):
        assert get_engine(ENGINE).presplit_windows is True

    @pytest.mark.parametrize(
        "track",
        [{}, {"track_item_completion": True}, {"track_arrivals": True}],
        ids=["plain", "items", "arrivals"],
    )
    def test_presplit_matches_rescan(self, track):
        from test_engines_differential import assert_results_identical

        presplit = FrontierEngine(presplit_windows=True)
        rescan = FrontierEngine(presplit_windows=False)
        for schedule in self._schedules():
            program = RoundProgram.from_schedule(schedule, 80)
            a = presplit.run(program, track_history=True, **track)
            b = rescan.run(program, track_history=True, **track)
            assert_results_identical(a, b, (schedule.name, track))

    def test_presplit_matches_rescan_on_saturating_schedule(self):
        from test_engines_differential import assert_results_identical

        # Exercises the fixed-point early exit and empty pending windows.
        n = 7
        graph = path_graph(n)
        rounds = [[(i, i + 1)] for i in range(n - 1)]
        schedule = SystolicSchedule(graph, rounds, mode=Mode.DIRECTED)
        program = RoundProgram.from_schedule(schedule, 120)
        a = FrontierEngine(presplit_windows=True).run(program, track_history=True)
        b = FrontierEngine(presplit_windows=False).run(program, track_history=True)
        assert_results_identical(a, b, "saturating")

    def test_presplit_matches_rescan_on_resume(self):
        # A resumed run must stay bit-exact on both window layouts.
        schedule = coloring_systolic_schedule(cycle_graph(14), Mode.HALF_DUPLEX)
        program = RoundProgram.from_schedule(schedule, 60)
        results = []
        for flag in (True, False):
            engine = FrontierEngine(presplit_windows=flag)
            first = engine.run_checkpointed(program, checkpoint_rounds=(3,))
            (state,) = first.checkpoints
            results.append(engine.run_checkpointed(program, resume_from=state).result)
        from test_engines_differential import assert_results_identical

        assert_results_identical(results[0], results[1], "resume")
