"""Tests for the constructive gossip protocols (repro.protocols.*)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ProtocolError
from repro.gossip.model import Mode
from repro.gossip.simulation import gossip_time, simulate_systolic
from repro.gossip.validation import validate_protocol
from repro.protocols.complete import complete_graph_schedule, recursive_doubling_rounds
from repro.protocols.cycle import cycle_systolic_schedule
from repro.protocols.generic import coloring_systolic_schedule, measured_gossip_time
from repro.protocols.grid import grid_systolic_schedule
from repro.protocols.hypercube import hypercube_dimension_exchange
from repro.protocols.path import path_systolic_schedule
from repro.protocols.tree import tree_systolic_schedule
from repro.topologies.butterfly import wrapped_butterfly
from repro.topologies.debruijn import de_bruijn, de_bruijn_digraph
from repro.topologies.kautz import kautz
from repro.topologies.properties import diameter


def _assert_valid_and_complete(schedule):
    validate_protocol(schedule.unroll(2 * schedule.period))
    result = simulate_systolic(schedule)
    assert result.complete
    return result.completion_round


class TestPathSchedules:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    def test_half_duplex_completes(self, n):
        schedule = path_systolic_schedule(n, Mode.HALF_DUPLEX)
        completion = _assert_valid_and_complete(schedule)
        assert completion >= n - 1  # can never beat the diameter

    @pytest.mark.parametrize("n", [2, 4, 7, 10])
    def test_full_duplex_completes(self, n):
        schedule = path_systolic_schedule(n, Mode.FULL_DUPLEX)
        completion = _assert_valid_and_complete(schedule)
        assert completion >= n - 1

    def test_period_values(self):
        assert path_systolic_schedule(2, Mode.HALF_DUPLEX).period == 2
        assert path_systolic_schedule(6, Mode.HALF_DUPLEX).period == 4
        assert path_systolic_schedule(6, Mode.FULL_DUPLEX).period == 2

    def test_half_duplex_time_linear_in_n(self):
        times = [gossip_time(path_systolic_schedule(n, Mode.HALF_DUPLEX)) for n in (6, 12, 24)]
        assert times[1] > times[0]
        assert times[2] > times[1]
        # roughly linear: doubling n should not much more than double the time
        assert times[2] <= 3 * times[1]

    def test_invalid_inputs(self):
        with pytest.raises(ProtocolError):
            path_systolic_schedule(1, Mode.HALF_DUPLEX)
        with pytest.raises(ProtocolError):
            path_systolic_schedule(5, Mode.DIRECTED)


class TestCycleSchedules:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 9, 12])
    def test_completes_both_modes(self, n):
        for mode in (Mode.HALF_DUPLEX, Mode.FULL_DUPLEX):
            schedule = cycle_systolic_schedule(n, mode)
            completion = _assert_valid_and_complete(schedule)
            assert completion >= n // 2

    def test_even_cycle_periods(self):
        assert cycle_systolic_schedule(8, Mode.FULL_DUPLEX).period == 2
        assert cycle_systolic_schedule(8, Mode.HALF_DUPLEX).period == 4

    def test_odd_cycle_periods(self):
        assert cycle_systolic_schedule(9, Mode.FULL_DUPLEX).period == 3
        assert cycle_systolic_schedule(9, Mode.HALF_DUPLEX).period == 6

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            cycle_systolic_schedule(2, Mode.HALF_DUPLEX)
        with pytest.raises(ProtocolError):
            cycle_systolic_schedule(6, Mode.DIRECTED)


class TestCompleteGraphSchedules:
    def test_full_duplex_power_of_two_is_log_n(self):
        for k in (2, 3, 4):
            schedule = complete_graph_schedule(2**k, Mode.FULL_DUPLEX)
            assert gossip_time(schedule) == k

    def test_half_duplex_power_of_two_is_two_log_n(self):
        schedule = complete_graph_schedule(8, Mode.HALF_DUPLEX)
        assert gossip_time(schedule) == 6

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 12])
    def test_non_power_of_two_completes(self, n):
        schedule = complete_graph_schedule(n, Mode.FULL_DUPLEX)
        completion = _assert_valid_and_complete(schedule)
        assert completion >= math.ceil(math.log2(n))

    def test_rounds_are_matchings(self):
        rounds = recursive_doubling_rounds(8, Mode.HALF_DUPLEX)
        assert len(rounds) == 2 * 3

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            recursive_doubling_rounds(1, Mode.FULL_DUPLEX)
        with pytest.raises(ProtocolError):
            recursive_doubling_rounds(8, Mode.DIRECTED)


class TestHypercubeSchedules:
    def test_full_duplex_optimal(self):
        for dim in (1, 2, 3, 4, 5):
            assert gossip_time(hypercube_dimension_exchange(dim, Mode.FULL_DUPLEX)) == dim

    def test_half_duplex_twice_dim(self):
        for dim in (2, 3, 4):
            assert gossip_time(hypercube_dimension_exchange(dim, Mode.HALF_DUPLEX)) == 2 * dim

    def test_schedule_is_valid(self):
        _assert_valid_and_complete(hypercube_dimension_exchange(3, Mode.FULL_DUPLEX))

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            hypercube_dimension_exchange(0, Mode.FULL_DUPLEX)
        with pytest.raises(ProtocolError):
            hypercube_dimension_exchange(3, Mode.DIRECTED)


class TestTreeSchedules:
    @pytest.mark.parametrize("d, height", [(2, 2), (2, 3), (3, 2)])
    def test_completes(self, d, height):
        schedule = tree_systolic_schedule(d, height, Mode.HALF_DUPLEX)
        completion = _assert_valid_and_complete(schedule)
        assert completion >= 2 * height  # everything must pass through the root

    def test_full_duplex(self):
        _assert_valid_and_complete(tree_systolic_schedule(2, 3, Mode.FULL_DUPLEX))

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            tree_systolic_schedule(2, 0, Mode.HALF_DUPLEX)
        with pytest.raises(ProtocolError):
            tree_systolic_schedule(2, 2, Mode.DIRECTED)


class TestGridSchedules:
    @pytest.mark.parametrize("rows, cols", [(2, 2), (3, 4), (4, 4), (1, 6)])
    def test_completes(self, rows, cols):
        schedule = grid_systolic_schedule(rows, cols, Mode.HALF_DUPLEX)
        completion = _assert_valid_and_complete(schedule)
        assert completion >= rows + cols - 2

    def test_full_duplex_period_at_most_four(self):
        assert grid_systolic_schedule(4, 4, Mode.FULL_DUPLEX).period <= 4

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            grid_systolic_schedule(1, 1, Mode.HALF_DUPLEX)
        with pytest.raises(ProtocolError):
            grid_systolic_schedule(3, 3, Mode.DIRECTED)


class TestGenericColoringSchedules:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: de_bruijn(2, 3),
            lambda: de_bruijn(2, 4),
            lambda: wrapped_butterfly(2, 3),
            lambda: kautz(2, 3),
        ],
    )
    def test_completes_on_paper_topologies(self, graph_factory):
        graph = graph_factory()
        schedule = coloring_systolic_schedule(graph, Mode.HALF_DUPLEX)
        completion = _assert_valid_and_complete(schedule)
        assert completion >= diameter(graph)

    def test_measured_time_is_positive_and_bounded(self):
        graph = de_bruijn(2, 4)
        time = measured_gossip_time(graph, Mode.HALF_DUPLEX)
        # Crude upper bound: (diameter + 1) periods of the colouring schedule.
        schedule = coloring_systolic_schedule(graph, Mode.HALF_DUPLEX)
        assert 0 < time <= (diameter(graph) + 1) * schedule.period

    def test_full_duplex_faster_than_half_duplex(self):
        graph = de_bruijn(2, 4)
        assert measured_gossip_time(graph, Mode.FULL_DUPLEX) <= measured_gossip_time(
            graph, Mode.HALF_DUPLEX
        )

    def test_directed_graph_rejected(self):
        with pytest.raises(ProtocolError):
            coloring_systolic_schedule(de_bruijn_digraph(2, 3), Mode.HALF_DUPLEX)
