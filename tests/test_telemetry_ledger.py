"""Tests for the persistent run ledger, the regression detector, and the
trajectory recorder's dedupe/ledger integration (no benchmark battery is
run — entries are synthesised).
"""

from __future__ import annotations

import importlib.util
import json
import os
import sqlite3
import sys

import pytest

from repro.telemetry.core import Histogram
from repro.telemetry.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_ENV_VAR,
    Ledger,
    LedgerError,
    SCHEMA_VERSION,
    ledger_path,
    record_entry,
)
from repro.telemetry.regress import (
    Observation,
    analyze_ledger,
    analyze_section,
    analyze_trajectory,
    main as regress_main,
)

_BENCHMARKS = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
_TRAJECTORY = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_trajectory.json"
)


def _load_record_trajectory():
    spec = importlib.util.spec_from_file_location(
        "record_trajectory", os.path.join(_BENCHMARKS, "record_trajectory.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _entry(date, rev, seconds=1.0, counters=None, section="bench"):
    return {
        "date": date,
        "rev": rev,
        "sections": {
            section: {
                "instance": "C(8)",
                "seconds": seconds,
                "counters": counters or {"work": 100},
                "histograms": {"lat": {"1": 3, "9": 1}},
            }
        },
        "telemetry": dict(counters or {"work": 100}),
    }


# --------------------------------------------------------------------- #
# Ledger


def test_ledger_created_and_migrated_from_empty(tmp_path):
    path = tmp_path / "sub" / "ledger.db"
    with Ledger(str(path)) as ledger:
        assert ledger.sections() == []
    # Schema version stamped; WAL mode on; tables exist.
    conn = sqlite3.connect(str(path))
    (version,) = conn.execute("PRAGMA user_version").fetchone()
    assert version == SCHEMA_VERSION
    tables = {
        name
        for (name,) in conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
        )
    }
    assert {"runs", "counters", "histogram_buckets"} <= tables
    conn.close()
    # Re-opening an already-migrated ledger is a no-op.
    with Ledger(str(path)) as ledger:
        assert ledger.sections() == []


def test_ledger_refuses_newer_schema(tmp_path):
    path = tmp_path / "future.db"
    conn = sqlite3.connect(str(path))
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(LedgerError):
        Ledger(str(path))


def test_ledger_round_trip(tmp_path):
    path = str(tmp_path / "ledger.db")
    hist = Histogram.of(2, 2, 50)
    with Ledger(path) as ledger:
        ledger.record_run(
            date="2026-08-01",
            rev="abc1234",
            section="bench",
            seconds=1.25,
            counters={"work": 7, "rounds": 32},
            histograms={"lat": hist},
            attrs={"instance": "C(8)"},
        )
    with Ledger(path) as ledger:
        (row,) = ledger.runs(section="bench")
        assert (row.date, row.rev, row.section) == ("2026-08-01", "abc1234", "bench")
        assert row.seconds == 1.25
        assert row.counters == {"rounds": 32, "work": 7}
        assert row.attrs == {"instance": "C(8)"}
        assert row.histograms["lat"].buckets == hist.buckets
        assert row.histograms["lat"].count == hist.count


def test_ledger_upsert_replaces_same_key(tmp_path):
    path = str(tmp_path / "ledger.db")
    with Ledger(path) as ledger:
        ledger.record_run(
            date="2026-08-01", rev="abc", section="bench", seconds=1.0,
            counters={"work": 1}, histograms={"lat": Histogram.of(1)},
        )
        ledger.record_run(
            date="2026-08-01", rev="abc", section="bench", seconds=2.0,
            counters={"work": 2},
        )
        rows = ledger.runs(section="bench")
        assert len(rows) == 1
        assert rows[0].seconds == 2.0
        assert rows[0].counters == {"work": 2}
        # The replaced row's counters/buckets cascaded away.
        orphans = ledger._conn.execute("SELECT COUNT(*) FROM histogram_buckets").fetchone()
        assert orphans == (0,)


def test_ledger_path_resolution(tmp_path, monkeypatch):
    monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
    assert ledger_path() == DEFAULT_LEDGER_PATH
    assert ledger_path("/x/y.db") == "/x/y.db"
    monkeypatch.setenv(LEDGER_ENV_VAR, str(tmp_path / "env.db"))
    assert ledger_path() == str(tmp_path / "env.db")
    assert ledger_path("/x/y.db") == "/x/y.db"


def test_record_entry_maps_sections(tmp_path):
    path = str(tmp_path / "ledger.db")
    entry = _entry("2026-08-01", "abc", seconds=0.5)
    entry["sections"]["engines"] = {
        "instance": "C(1024)",
        "seconds": {"vectorized": 0.2, "frontier": 0.4},
        "best_engine": "vectorized",
        "best_seconds": 0.2,
        "counters": {"engine.vectorized.runs": 1},
        "histograms": {},
    }
    with Ledger(path) as ledger:
        record_entry(ledger, entry, entry["rev"])
        assert ledger.sections() == ["bench", "engines"]
        (engines,) = ledger.runs(section="engines")
        # Engine sections store their best timing as the scalar and keep
        # the per-backend dict in attrs.
        assert engines.seconds == 0.2
        assert engines.attrs["seconds_vectorized"] == 0.2
        assert engines.attrs["best_engine"] == "vectorized"
        (bench,) = ledger.runs(section="bench")
        assert bench.histograms["lat"].buckets == {1: 3, 9: 1}
        assert ledger.revisions() == ["abc"]


# --------------------------------------------------------------------- #
# Regression detector


def _series(*seconds, counters=None):
    return [
        Observation(
            date=f"2026-08-{i + 1:02d}",
            rev="r",
            seconds=value,
            counters=(counters[i] if counters else {"work": 100}),
        )
        for i, value in enumerate(seconds)
    ]


def test_clean_series_has_no_findings():
    assert analyze_section("s", _series(1.0, 1.02, 0.98, 1.01, 1.0)) == []


def test_single_observation_is_vacuous():
    assert analyze_section("s", _series(1.0)) == []


def test_timing_regression_flagged():
    findings = analyze_section("s", _series(1.0, 1.0, 1.0, 2.0))
    assert [f.kind for f in findings] == ["timing_regression"]
    assert findings[0].failing
    assert findings[0].ratio == pytest.approx(2.0)
    # Baseline is the trailing median: a single old outlier cannot mask it.
    outlier = analyze_section("s", _series(1.0, 5.0, 1.0, 1.0, 1.0, 2.0))
    assert [f.kind for f in outlier] == ["timing_regression"]


def test_workload_shift_flagged_when_timing_flat():
    counters = [{"work": 100}, {"work": 100}, {"work": 100}, {"work": 200}]
    findings = analyze_section("s", _series(1.0, 1.0, 1.0, 1.05, counters=counters))
    assert [f.kind for f in findings] == ["workload_shift"]
    assert not findings[0].failing
    assert findings[0].metric == "work"
    # Shifts *down* count too.
    counters[-1] = {"work": 50}
    down = analyze_section("s", _series(1.0, 1.0, 1.0, 1.0, counters=counters))
    assert [f.kind for f in down] == ["workload_shift"]


def test_timing_shift_flagged_when_counters_flat():
    findings = analyze_section("s", _series(1.0, 1.0, 1.0, 1.2))
    assert [f.kind for f in findings] == ["timing_shift"]
    assert not findings[0].failing


def test_regression_with_matching_workload_is_not_doubly_reported():
    # Twice the work in twice the time: a regression in wall-clock terms,
    # but the counter movement explains it — one failing finding, no
    # spurious workload_shift on top.
    counters = [{"work": 100}, {"work": 100}, {"work": 100}, {"work": 200}]
    findings = analyze_section("s", _series(1.0, 1.0, 1.0, 2.0, counters=counters))
    assert [f.kind for f in findings] == ["timing_regression"]


def test_analyze_trajectory_old_format_rows():
    # Pre-ledger rows: no rev, no per-section counters -> timing-only.
    rows = [
        {"date": "2026-08-01", "sections": {"bench": {"seconds": 1.0}}},
        {"date": "2026-08-02", "sections": {"bench": {"seconds": 2.0}}},
    ]
    findings = analyze_trajectory(rows)
    assert [f.kind for f in findings] == ["timing_regression"]


def test_analyze_trajectory_engine_sections_use_best_seconds():
    def row(date, best):
        return {
            "date": date,
            "sections": {
                "plain": {"seconds": {"a": best + 0.1, "b": best}, "best_seconds": best}
            },
        }

    clean = analyze_trajectory([row("2026-08-01", 1.0), row("2026-08-02", 1.0)])
    assert clean == []
    regressed = analyze_trajectory([row("2026-08-01", 1.0), row("2026-08-02", 3.0)])
    assert [f.kind for f in regressed] == ["timing_regression"]


def test_committed_trajectory_is_quiet():
    with open(_TRAJECTORY) as handle:
        rows = json.load(handle)
    assert not any(f.failing for f in analyze_trajectory(rows))


def test_regress_cli_check(tmp_path, capsys):
    clean = [
        _entry("2026-08-01", "a"),
        _entry("2026-08-02", "b"),
    ]
    path = tmp_path / "traj.json"
    path.write_text(json.dumps(clean))
    assert regress_main(["--check", str(path)]) == 0
    slow = clean + [_entry("2026-08-03", "c", seconds=2.5)]
    path.write_text(json.dumps(slow))
    assert regress_main(["--check", str(path)]) == 1
    out = capsys.readouterr().out
    assert "timing_regression" in out


def test_regress_cli_ledger_mode(tmp_path):
    db = str(tmp_path / "ledger.db")
    with Ledger(db) as ledger:
        record_entry(ledger, _entry("2026-08-01", "a"), "a")
        record_entry(ledger, _entry("2026-08-02", "b", seconds=2.5), "b")
    assert regress_main(["--ledger", db]) == 1
    findings = []
    with Ledger(db) as ledger:
        findings = analyze_ledger(ledger)
    assert [f.kind for f in findings] == ["timing_regression"]


def test_regress_cli_requires_one_input(tmp_path):
    with pytest.raises(SystemExit):
        regress_main([])
    with pytest.raises(SystemExit):
        regress_main(["--check", "x.json", "--ledger", "y.db"])


# --------------------------------------------------------------------- #
# record_trajectory integration (no battery run)


def test_append_entry_dedupes_same_date(tmp_path):
    module = _load_record_trajectory()
    output = str(tmp_path / "traj.json")
    module.append_entry(_entry("2026-08-01", "a", seconds=1.0), output)
    module.append_entry(_entry("2026-08-02", "a", seconds=1.1), output)
    rows = json.load(open(output))
    assert [row["date"] for row in rows] == ["2026-08-01", "2026-08-02"]
    # A same-date re-run replaces the earlier row, keeping the latest.
    module.append_entry(_entry("2026-08-02", "b", seconds=9.9), output)
    rows = json.load(open(output))
    assert [row["date"] for row in rows] == ["2026-08-01", "2026-08-02"]
    assert rows[-1]["rev"] == "b"
    assert rows[-1]["sections"]["bench"]["seconds"] == 9.9


def test_append_entry_refuses_non_list(tmp_path):
    module = _load_record_trajectory()
    output = str(tmp_path / "traj.json")
    with open(output, "w") as fh:
        json.dump({"not": "a list"}, fh)
    with pytest.raises(SystemExit):
        module.append_entry(_entry("2026-08-01", "a"), output)


def test_git_rev_short_hash():
    module = _load_record_trajectory()
    rev = module._git_rev()
    assert rev == "unknown" or (4 <= len(rev) <= 40 and rev.isalnum())


# --------------------------------------------------------------------- #
# CLI report / compare


def _cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_report_empty_and_populated(tmp_path, capsys):
    db = str(tmp_path / "ledger.db")
    assert _cli(["report", "--ledger", db]) == 0
    assert "no recorded runs" in capsys.readouterr().out
    with Ledger(db) as ledger:
        record_entry(ledger, _entry("2026-08-01", "a"), "a")
        record_entry(ledger, _entry("2026-08-02", "b", seconds=2.5), "b")
    assert _cli(["report", "--ledger", db]) == 0
    out = capsys.readouterr().out
    assert "section bench" in out
    assert "2026-08-01" in out and "2026-08-02" in out
    assert "timing_regression" in out
    assert _cli(["report", "--ledger", db, "--section", "bench", "--last", "1"]) == 0
    out = capsys.readouterr().out
    assert "2026-08-01" not in out  # --last 1 keeps only the newest row


def test_cli_compare(tmp_path, capsys):
    db = str(tmp_path / "ledger.db")
    with Ledger(db) as ledger:
        record_entry(ledger, _entry("2026-08-01", "aaa", counters={"work": 100}), "aaa")
        record_entry(
            ledger,
            _entry("2026-08-02", "bbb", seconds=2.0, counters={"work": 300}),
            "bbb",
        )
    assert _cli(["compare", "aaa", "bbb", "--ledger", db]) == 0
    out = capsys.readouterr().out
    assert "2.00x" in out
    assert "work: 100 -> 300" in out
    assert _cli(["compare", "aaa", "nosuch", "--ledger", db]) == 1
    assert "nosuch" in capsys.readouterr().err
