"""Tests for the analytic lower bounds.

Covers the general bound (Corollary 4.4 / Fig. 4), Theorem 4.1's finite-n
form, the separator bound (Theorem 5.1 / Figs. 5-6), the full-duplex bounds
(Section 6 / Fig. 8) and the non-systolic limits.  Every coefficient the
paper prints is checked to 4 decimal places.
"""

from __future__ import annotations

import math

import pytest

from repro.core.full_duplex import (
    full_duplex_general_bound,
    full_duplex_separator_bound,
    verify_lemma_61,
)
from repro.core.general_bound import GeneralBound, general_lower_bound, theorem41_rounds
from repro.core.nonsystolic import (
    HALF_DUPLEX_NONSYSTOLIC_COEFFICIENT,
    nonsystolic_full_duplex_general_bound,
    nonsystolic_full_duplex_separator_bound,
    nonsystolic_general_bound,
    nonsystolic_separator_bound,
)
from repro.core.polynomials import GOLDEN_RATIO_INVERSE, half_duplex_norm_bound
from repro.core.separator_bound import separator_lower_bound
from repro.exceptions import BoundComputationError
from repro.experiments.reference import (
    BROADCAST_DEGREE_COEFFICIENTS,
    FIG4_GENERAL_COEFFICIENTS,
    TEXT_QUOTED_HALF_DUPLEX_NONSYSTOLIC,
    TEXT_QUOTED_HALF_DUPLEX_SYSTOLIC,
)
from repro.topologies.separators import family_parameters


class TestGeneralBound:
    @pytest.mark.parametrize("s, expected", [(s, v) for s, v in FIG4_GENERAL_COEFFICIENTS.items()])
    def test_fig4_coefficients(self, s, expected):
        # The paper prints 4 decimals and appears to truncate rather than
        # round (e.g. it lists 1.8133 where the root gives 1.81336), so the
        # agreement tolerance is one unit in the fourth decimal place.
        bound = general_lower_bound(s)
        assert bound.coefficient == pytest.approx(expected, abs=1e-4)

    def test_lambda_solves_characteristic_equation(self):
        for s in (3, 4, 5, 6, 7, 8):
            bound = general_lower_bound(s)
            assert half_duplex_norm_bound(s, bound.lambda_star) == pytest.approx(1.0, abs=1e-9)

    def test_coefficient_decreasing_in_period(self):
        values = [general_lower_bound(s).coefficient for s in range(3, 12)]
        assert values == sorted(values, reverse=True)

    def test_limit_is_golden_ratio(self):
        bound = general_lower_bound(None)
        assert bound.lambda_star == pytest.approx(GOLDEN_RATIO_INVERSE, abs=1e-10)
        assert bound.coefficient == pytest.approx(HALF_DUPLEX_NONSYSTOLIC_COEFFICIENT)

    def test_all_systolic_bounds_exceed_nonsystolic(self):
        limit = general_lower_bound(None).coefficient
        for s in range(3, 20):
            assert general_lower_bound(s).coefficient >= limit - 1e-12

    def test_small_periods_rejected(self):
        with pytest.raises(BoundComputationError):
            general_lower_bound(2)
        with pytest.raises(BoundComputationError):
            general_lower_bound(1)

    def test_lower_bound_value(self):
        bound = general_lower_bound(4)
        assert bound.lower_bound(1024) == pytest.approx(bound.coefficient * 10.0)
        with pytest.raises(BoundComputationError):
            bound.lower_bound(1)

    def test_describe_mentions_period_and_coefficient(self):
        text = general_lower_bound(5).describe()
        assert "s=5" in text
        assert "1.6502" in text
        infinite = general_lower_bound(None).describe()
        assert "∞" in infinite

    def test_certified_rounds_consistent_with_theorem41(self):
        bound = general_lower_bound(4)
        assert bound.certified_rounds(256) == theorem41_rounds(256, bound.lambda_star)


class TestTheorem41Rounds:
    def test_inequality_holds_at_returned_value(self):
        for n in (4, 16, 256, 4096):
            for lam in (0.3, 0.618, 0.786):
                t = theorem41_rounds(n, lam)
                assert t * t >= lam**t * 2 * (n - 1) - 1e-9
                if t > 1:
                    previous = t - 1
                    assert previous * previous < lam**previous * 2 * (n - 1) + 1e-9

    def test_monotone_in_n(self):
        lam = 0.7
        values = [theorem41_rounds(n, lam) for n in (4, 64, 1024, 2**16)]
        assert values == sorted(values)

    def test_monotone_in_lambda(self):
        n = 4096
        assert theorem41_rounds(n, 0.5) <= theorem41_rounds(n, 0.7) <= theorem41_rounds(n, 0.9)

    def test_asymptotically_close_to_coefficient(self):
        bound = general_lower_bound(4)
        n = 2**40
        t = theorem41_rounds(n, bound.lambda_star)
        # Within the O(log log n) slack of e(4)·log2(n).
        assert t >= bound.lower_bound(n) - 4 * math.log2(40)
        assert t <= bound.lower_bound(n) + 1

    def test_invalid_inputs(self):
        with pytest.raises(BoundComputationError):
            theorem41_rounds(1, 0.5)
        with pytest.raises(BoundComputationError):
            theorem41_rounds(8, 1.5)


class TestSeparatorBound:
    def test_wbf_s4_matches_paper(self):
        alpha, ell = family_parameters("WBF", 2)
        bound = separator_lower_bound(alpha, ell, 4)
        expected = TEXT_QUOTED_HALF_DUPLEX_SYSTOLIC["WBF"][(2, 4)]
        assert bound.coefficient == pytest.approx(expected, abs=1e-4)

    def test_db_s4_matches_general_bound(self):
        alpha, ell = family_parameters("DB", 2)
        bound = separator_lower_bound(alpha, ell, 4)
        expected = TEXT_QUOTED_HALF_DUPLEX_SYSTOLIC["DB"][(2, 4)]
        assert bound.coefficient == pytest.approx(expected, abs=1e-4)
        assert bound.at_boundary  # the paper marks this cell with *

    def test_separator_bound_never_below_general(self):
        # α·ℓ >= 1 implies the boundary value already equals the general bound.
        for family in ("BF", "WBF_digraph", "WBF", "DB", "K"):
            for degree in (2, 3):
                alpha, ell = family_parameters(family, degree)
                for s in (3, 5, 8):
                    refined = separator_lower_bound(alpha, ell, s).coefficient
                    general = general_lower_bound(s).coefficient
                    assert refined >= general - 1e-6

    def test_butterfly_improves_on_general(self):
        alpha, ell = family_parameters("BF", 2)
        bound = separator_lower_bound(alpha, ell, 4)
        assert bound.coefficient > general_lower_bound(4).coefficient + 0.1
        assert not bound.at_boundary

    def test_feasibility_of_maximiser(self):
        alpha, ell = family_parameters("WBF", 2)
        for s in (3, 4, 6, None):
            bound = separator_lower_bound(alpha, ell, s)
            assert 0.0 < bound.lambda_star <= bound.boundary_lambda + 1e-12

    def test_lower_bound_and_describe(self):
        alpha, ell = family_parameters("DB", 2)
        bound = separator_lower_bound(alpha, ell, 4)
        assert bound.lower_bound(2**10) == pytest.approx(10 * bound.coefficient)
        assert "separator" in bound.describe()
        with pytest.raises(BoundComputationError):
            bound.lower_bound(0)

    def test_invalid_parameters(self):
        with pytest.raises(BoundComputationError):
            separator_lower_bound(0.0, 1.0, 4)
        with pytest.raises(BoundComputationError):
            separator_lower_bound(1.0, -1.0, 4)
        with pytest.raises(BoundComputationError):
            separator_lower_bound(1.0, 1.0, 2)
        with pytest.raises(BoundComputationError):
            separator_lower_bound(1.0, 1.0, 4, mode="simplex")


class TestNonSystolic:
    def test_general_limit_value(self):
        assert nonsystolic_general_bound().coefficient == pytest.approx(1.4404, abs=5e-5)

    def test_wbf_nonsystolic_matches_paper(self):
        alpha, ell = family_parameters("WBF", 2)
        bound = nonsystolic_separator_bound(alpha, ell)
        assert bound.coefficient == pytest.approx(
            TEXT_QUOTED_HALF_DUPLEX_NONSYSTOLIC["WBF"][2], abs=1e-4
        )

    def test_db_nonsystolic_matches_paper(self):
        alpha, ell = family_parameters("DB", 2)
        bound = nonsystolic_separator_bound(alpha, ell)
        assert bound.coefficient == pytest.approx(
            TEXT_QUOTED_HALF_DUPLEX_NONSYSTOLIC["DB"][2], abs=1e-4
        )

    def test_nonsystolic_below_systolic_for_same_family(self):
        alpha, ell = family_parameters("WBF", 2)
        systolic = separator_lower_bound(alpha, ell, 4).coefficient
        unrestricted = nonsystolic_separator_bound(alpha, ell).coefficient
        assert unrestricted <= systolic + 1e-9

    def test_full_duplex_nonsystolic_general_is_one(self):
        bound = nonsystolic_full_duplex_general_bound()
        assert bound.lambda_star == pytest.approx(0.5, abs=1e-10)
        assert bound.coefficient == pytest.approx(1.0, abs=1e-10)

    def test_full_duplex_nonsystolic_separator_beats_general(self):
        alpha, ell = family_parameters("WBF", 2)
        bound = nonsystolic_full_duplex_separator_bound(alpha, ell)
        assert bound.coefficient > 1.0


class TestFullDuplex:
    def test_general_s3_equals_broadcast_constant(self):
        # The paper notes the general full-duplex systolic bound coincides
        # with the broadcasting bound c(2) = 1.4404 for s = 3.
        bound = full_duplex_general_bound(3)
        assert bound.coefficient == pytest.approx(BROADCAST_DEGREE_COEFFICIENTS[2], abs=5e-5)

    def test_general_bound_decreasing_in_period(self):
        values = [full_duplex_general_bound(s).coefficient for s in range(3, 10)]
        assert values == sorted(values, reverse=True)

    def test_half_duplex_dominates_full_duplex(self):
        # Half-duplex protocols are more constrained, so their lower bound is
        # at least the full-duplex one for every period.
        for s in (3, 4, 6, 8):
            assert (
                general_lower_bound(s).coefficient
                >= full_duplex_general_bound(s).coefficient - 1e-9
            )

    def test_small_period_rejected(self):
        with pytest.raises(BoundComputationError):
            full_duplex_general_bound(2)

    def test_separator_bound_improves_for_wbf(self):
        alpha, ell = family_parameters("WBF", 2)
        refined = full_duplex_separator_bound(alpha, ell, 4)
        general = full_duplex_general_bound(4)
        assert refined.coefficient > general.coefficient
        assert refined.mode == "full-duplex"

    def test_lemma61_verification(self):
        report = verify_lemma_61(4, 12, 0.55)
        assert report["holds"]
        assert report["norm"] <= report["bound"] + 1e-9

    def test_lemma61_various_parameters(self):
        for s in (3, 4, 6):
            for lam in (0.3, 0.5, 0.7):
                assert verify_lemma_61(s, 10, lam)["holds"]
