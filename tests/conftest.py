"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


def pytest_configure(config):
    """Register custom markers (no pytest.ini/pyproject pytest section exists)."""
    config.addinivalue_line(
        "markers",
        "slow: long-running test (excluded in CI's default run via -m 'not slow')",
    )
    config.addinivalue_line(
        "markers",
        "perf_regression: comparative wall-clock assertion; runs in the CI perf "
        "job (cron/dispatch) only, never as a per-PR gate, because relative "
        "timings flake on shared runners",
    )

from repro.gossip.model import Mode
from repro.protocols.complete import complete_graph_schedule
from repro.protocols.cycle import cycle_systolic_schedule
from repro.protocols.hypercube import hypercube_dimension_exchange
from repro.protocols.path import path_systolic_schedule
from repro.topologies.classic import (
    complete_graph,
    cycle_graph,
    grid_2d,
    hypercube,
    path_graph,
)
from repro.topologies.debruijn import de_bruijn, de_bruijn_digraph
from repro.topologies.butterfly import wrapped_butterfly
from repro.topologies.kautz import kautz_digraph


@pytest.fixture
def small_path():
    """Path on 6 vertices."""
    return path_graph(6)


@pytest.fixture
def small_cycle():
    """Cycle on 8 vertices."""
    return cycle_graph(8)


@pytest.fixture
def small_complete():
    """Complete graph on 8 vertices."""
    return complete_graph(8)


@pytest.fixture
def small_hypercube():
    """Hypercube Q_3."""
    return hypercube(3)


@pytest.fixture
def small_grid():
    """3 x 4 grid."""
    return grid_2d(3, 4)


@pytest.fixture
def small_debruijn():
    """Undirected de Bruijn DB(2, 3)."""
    return de_bruijn(2, 3)


@pytest.fixture
def small_debruijn_digraph():
    """Directed de Bruijn DB->(2, 3)."""
    return de_bruijn_digraph(2, 3)


@pytest.fixture
def small_wbf():
    """Undirected wrapped butterfly WBF(2, 3)."""
    return wrapped_butterfly(2, 3)


@pytest.fixture
def small_kautz_digraph():
    """Kautz digraph K->(2, 3)."""
    return kautz_digraph(2, 3)


@pytest.fixture
def path_schedule_half():
    """Half-duplex systolic schedule on P_8."""
    return path_systolic_schedule(8, Mode.HALF_DUPLEX)


@pytest.fixture
def cycle_schedule_half():
    """Half-duplex systolic schedule on C_8."""
    return cycle_systolic_schedule(8, Mode.HALF_DUPLEX)


@pytest.fixture
def hypercube_schedule_full():
    """Full-duplex dimension exchange on Q_3."""
    return hypercube_dimension_exchange(3, Mode.FULL_DUPLEX)


@pytest.fixture
def complete_schedule_half():
    """Half-duplex recursive doubling on K_8."""
    return complete_graph_schedule(8, Mode.HALF_DUPLEX)
