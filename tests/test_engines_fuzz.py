"""Randomized differential fuzzing: every engine vs. the reference oracle.

Seeded Hypothesis strategies generate arbitrary periodic round programs —
random vertex counts, periods, arc sets (including deliberately invalid
non-matching rounds), duplex and half-duplex schedules, random initial
states, target masks and round budgets — and every registered engine must
reproduce the reference engine's results bit-for-bit on all of them.

The candidate list is drawn from the engine registry, so a future backend
registered via ``register_engine`` gets this fuzz coverage for free; the
suite is ``derandomize``d so CI failures replay deterministically.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.builders import random_systolic_schedule
from repro.gossip.engines import (
    HybridEngine,
    VectorizedEngine,
    available_engines,
    get_engine,
    supports_checkpointing,
)
from repro.gossip.engines.base import RoundProgram
from repro.gossip.model import Mode, make_round
from repro.topologies.base import Digraph
from repro.topologies.classic import cycle_graph, grid_2d, path_graph

# Single source of truth for "every observable field agrees" — extending
# SimulationResult only requires updating the differential suite's helper.
from test_engines_differential import assert_results_identical

CANDIDATES = tuple(name for name in available_engines() if name != "reference")
assert {"vectorized", "frontier", "hybrid"} <= set(CANDIDATES)

FUZZ = settings(max_examples=120, deadline=None, derandomize=True)


def check_all_engines(program: RoundProgram, options: dict, context=""):
    reference = get_engine("reference").run(program, **options)
    assert reference.engine_name == "reference"
    for candidate in CANDIDATES:
        got = get_engine(candidate).run(program, **options)
        assert got.engine_name == candidate
        assert_results_identical(reference, got, (context, candidate, options))


@st.composite
def engine_constructions(draw):
    """Freshly constructed engine instances with drawn constructor kwargs.

    The registry holds one default-configured singleton per backend; this
    strategy additionally sweeps the knobs the constructors expose — the
    hybrid engine's dense-fallback threshold (0.0 = always dense, 1.0 =
    always sparse) and batched-completion mode (which must be metamorphic
    under every drawn program and option set), and the vectorized kernel's
    tile size (``None`` = the untiled PR 1 kernel, small values force many
    tiles even on tiny instances).
    """
    engines = [
        HybridEngine(
            dense_threshold=draw(st.sampled_from([0.0, 0.125, 0.5, 1.0])),
            batched_completion=draw(st.booleans()),
        ),
        VectorizedEngine(tile_bytes=draw(st.sampled_from([None, 1 << 10]))),
    ]
    return engines


def check_constructed_engines(program: RoundProgram, engines, options: dict, context=""):
    """Drawn-kwargs engines must match the oracle on every field — and on
    the ``arrival_rounds`` matrix under *every* drawn tracking-flag
    combination, so arrival tracking is re-checked with the matrix forced
    on alongside whatever flags the strategy picked."""
    forced = dict(options, track_arrivals=True)
    reference = get_engine("reference").run(program, **options)
    reference_tracked = get_engine("reference").run(program, **forced)
    assert reference_tracked.arrival_rounds is not None
    for engine in engines:
        got = engine.run(program, **options)
        assert_results_identical(reference, got, (context, engine, options))
        tracked = engine.run(program, **forced)
        assert_results_identical(reference_tracked, tracked, (context, engine, forced))


@st.composite
def run_options(draw, n: int):
    """Tracking flags, optional custom initial state, optional target mask."""
    options: dict = {
        "track_history": draw(st.booleans()),
        "track_item_completion": draw(st.booleans()),
        "track_arrivals": draw(st.booleans()),
    }
    # Occasionally override the initial state, including bits above n to
    # exercise the engines' word-width widening.
    if draw(st.booleans()):
        options["initial"] = [
            (1 << i) | draw(st.integers(0, (1 << (n + 2)) - 1)) for i in range(n)
        ]
    # Target masks: full (None), empty (trivially complete), a strict subset
    # (broadcast-style) or one with unreachable high bits (never completes).
    options["target_mask"] = draw(
        st.one_of(
            st.none(),
            st.just(0),
            st.integers(1, (1 << n) - 1),
            st.integers(1 << n, (1 << (n + 2)) - 1),
        )
    )
    return options


@st.composite
def directed_programs(draw):
    """Arbitrary (possibly non-matching) rounds on a complete digraph."""
    n = draw(st.integers(1, 7))
    graph = Digraph(
        range(n),
        [(i, j) for i in range(n) for j in range(n) if i != j],
        name=f"fuzz-K{n}",
    )
    all_arcs = list(graph.arcs)
    period = draw(st.integers(1, 4))
    rounds = []
    for _ in range(period):
        if all_arcs:
            arcs = draw(
                st.lists(
                    st.sampled_from(all_arcs), unique=True, max_size=min(len(all_arcs), 8)
                )
            )
        else:
            arcs = []
        rounds.append(make_round(arcs))
    cyclic = draw(st.booleans())
    # Cyclic budgets may exceed the period (the schedule repeats); finite
    # budgets are clamped to the round count like RoundProgram.from_protocol.
    max_rounds = draw(st.integers(0, 3 * n + 2)) if cyclic else draw(st.integers(0, period))
    program = RoundProgram(graph, tuple(rounds), cyclic=cyclic, max_rounds=max_rounds)
    return program, draw(run_options(n))


@st.composite
def duplex_programs(draw):
    """Random matchings on symmetric topologies, half- and full-duplex."""
    graph = draw(
        st.sampled_from(
            [path_graph(5), cycle_graph(6), cycle_graph(9), grid_2d(3, 3)]
        )
    )
    mode = draw(st.sampled_from([Mode.HALF_DUPLEX, Mode.FULL_DUPLEX]))
    period = draw(st.integers(1, 5))
    schedule = random_systolic_schedule(
        graph,
        period,
        mode,
        seed=draw(st.integers(0, 10_000)),
        activation_probability=draw(st.sampled_from([0.5, 0.9, 1.0])),
    )
    max_rounds = draw(st.integers(0, 6 * graph.n))
    program = RoundProgram.from_schedule(schedule, max_rounds)
    return program, draw(run_options(graph.n))


@FUZZ
@given(case=directed_programs())
def test_directed_fuzz_agreement(case):
    program, options = case
    check_all_engines(program, options, "directed")


@FUZZ
@given(case=duplex_programs())
def test_duplex_fuzz_agreement(case):
    program, options = case
    check_all_engines(program, options, "duplex")


@FUZZ
@given(
    n=st.integers(3, 9),
    period=st.integers(1, 4),
    seed=st.integers(0, 10_000),
    max_rounds=st.integers(0, 50),
)
def test_cycle_schedule_fuzz_agreement(n, period, seed, max_rounds):
    """Dense flag-free runs on random cycle schedules (the default call path)."""
    schedule = random_systolic_schedule(cycle_graph(n), period, Mode.HALF_DUPLEX, seed=seed)
    program = RoundProgram.from_schedule(schedule, max_rounds)
    check_all_engines(program, {"track_history": True}, "cycle")


@FUZZ
@given(case=directed_programs(), engines=engine_constructions())
def test_directed_fuzz_constructor_kwargs(case, engines):
    """Arbitrary directed programs under drawn engine-constructor kwargs."""
    program, options = case
    check_constructed_engines(program, engines, options, "directed-kwargs")


def check_resume_roundtrip(program: RoundProgram, options: dict, prefix_fraction: float, context=""):
    """Checkpoint every checkpointable engine at a drawn round prefix, resume
    on *every* checkpointable engine (cross-engine pairs included), and hold
    the resumed results to the cold run bit for bit."""
    every = range(program.max_rounds + 1)
    cold = {}
    runs = {}
    for name in ("reference",) + CANDIDATES:
        engine = get_engine(name)
        if not supports_checkpointing(engine):
            continue
        runs[name] = engine.run_checkpointed(program, checkpoint_rounds=every, **options)
        cold[name] = runs[name].result
    for name, run in runs.items():
        assert_results_identical(cold["reference"], run.result, (context, name, options))
        if not run.checkpoints:
            continue
        state = run.checkpoints[
            min(int(prefix_fraction * len(run.checkpoints)), len(run.checkpoints) - 1)
        ]
        # ``initial`` describes round 0; the resumed run starts from the
        # state's knowledge instead, and the two are mutually exclusive.
        resume_options = {k: v for k, v in options.items() if k != "initial"}
        for other in runs:
            resumed = get_engine(other).resume(state, program, **resume_options)
            assert_results_identical(
                cold["reference"], resumed, (context, name, "->", other, state.round, options)
            )


@FUZZ
@given(case=directed_programs(), prefix_fraction=st.floats(0.0, 1.0))
def test_directed_fuzz_resume_roundtrip(case, prefix_fraction):
    """Checkpoint/resume at a drawn prefix of arbitrary directed programs."""
    program, options = case
    check_resume_roundtrip(program, options, prefix_fraction, "directed-resume")


@FUZZ
@given(case=duplex_programs(), prefix_fraction=st.floats(0.0, 1.0))
def test_duplex_fuzz_resume_roundtrip(case, prefix_fraction):
    """Checkpoint/resume at a drawn prefix of random duplex matchings."""
    program, options = case
    check_resume_roundtrip(program, options, prefix_fraction, "duplex-resume")


@FUZZ
@given(case=duplex_programs(), engines=engine_constructions())
def test_duplex_fuzz_constructor_kwargs(case, engines):
    """Random duplex matchings under drawn engine-constructor kwargs."""
    program, options = case
    check_constructed_engines(program, engines, options, "duplex-kwargs")


def check_constructed_resume_roundtrip(
    program: RoundProgram, engines, options: dict, prefix_fraction: float, context=""
):
    """Resume round-trips for drawn-kwargs engine instances.

    The registry round-trip tests cover the default singletons; here the
    constructed instances (the tiled vectorized kernel included) capture a
    drawn prefix state, resume it themselves, hand it to the reference
    oracle, and resume a reference-captured state of the same round — all
    bit-identical to the cold reference run.
    """
    reference = get_engine("reference")
    cold = reference.run(program, **options)
    resume_options = {k: v for k, v in options.items() if k != "initial"}
    every = range(program.max_rounds + 1)
    for engine in engines:
        if not supports_checkpointing(engine):
            continue
        run = engine.run_checkpointed(program, checkpoint_rounds=every, **options)
        assert_results_identical(cold, run.result, (context, engine, options))
        if not run.checkpoints:
            continue
        state = run.checkpoints[
            min(int(prefix_fraction * len(run.checkpoints)), len(run.checkpoints) - 1)
        ]
        resumed = engine.resume(state, program, **resume_options)
        assert_results_identical(cold, resumed, (context, engine, "self", state.round))
        portable = reference.resume(state, program, **resume_options)
        assert_results_identical(cold, portable, (context, engine, "->reference", state.round))
        ref_state = reference.run_checkpointed(
            program, checkpoint_rounds=(state.round,), **options
        ).checkpoints[-1]
        back = engine.resume(ref_state, program, **resume_options)
        assert_results_identical(cold, back, (context, engine, "reference->", ref_state.round))


@FUZZ
@given(
    case=duplex_programs(),
    engines=engine_constructions(),
    prefix_fraction=st.floats(0.0, 1.0),
)
def test_duplex_fuzz_constructed_resume_roundtrip(case, engines, prefix_fraction):
    """Drawn-kwargs engines (tiled vectorized included) through checkpoint/resume."""
    program, options = case
    check_constructed_resume_roundtrip(
        program, engines, options, prefix_fraction, "duplex-kwargs-resume"
    )


@FUZZ
@given(
    case=directed_programs(),
    engines=engine_constructions(),
    prefix_fraction=st.floats(0.0, 1.0),
)
def test_directed_fuzz_constructed_resume_roundtrip(case, engines, prefix_fraction):
    """Arbitrary directed programs under drawn-kwargs checkpoint/resume."""
    program, options = case
    check_constructed_resume_roundtrip(
        program, engines, options, prefix_fraction, "directed-kwargs-resume"
    )
